(* Statistical test layer for the anytime sampling engine (lib/sample).

   Three kinds of guarantee are pinned:

   - arithmetic: the rational CI machinery (isqrt, sqrt_upper, ln_upper,
     Hoeffding/Bernstein) really produces upper bounds — checked against
     float references with slack only in the sound direction;
   - statistical: across the query corpus the exact Shapley/Banzhaf
     value lies inside every reported confidence interval (at a δ so
     small that a failure means a bug, not bad luck), and the hybrid
     estimator with every stratum under the exact cap is *rationally
     equal* to the exact engines;
   - determinism: the whole report is a function of the master seed —
     reruns and jobs counts are unobservable. *)

open Test_util

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let values_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2
       (fun (f1, x1) (f2, x2) -> Fact.equal f1 f2 && Rational.equal x1 x2)
       v1 v2

(* ------------------------------------------------------------------ *)
(* Rational CI arithmetic                                              *)
(* ------------------------------------------------------------------ *)

let test_isqrt () =
  List.iter
    (fun (n, r) ->
       check_bigint
         (Printf.sprintf "isqrt %d" n)
         (Bigint.of_int r)
         (Bigint.isqrt (Bigint.of_int n)))
    [ (0, 0); (1, 1); (2, 1); (3, 1); (4, 2); (8, 2); (9, 3); (99, 9);
      (100, 10); (10_000, 100); (999_999, 999) ];
  Alcotest.check_raises "negative input"
    (Invalid_argument "Bigint.isqrt: negative argument") (fun () ->
        ignore (Bigint.isqrt (Bigint.of_int (-1))))

let prop_isqrt =
  qcheck ~count:300 "isqrt: s² <= n < (s+1)²"
    QCheck2.Gen.(
      triple (int_range 0 1_000_000) (int_range 0 1_000_000)
        (int_range 0 1_000_000))
    (fun (a, b, c) ->
       let n =
         Bigint.add (Bigint.mul (Bigint.of_int a) (Bigint.of_int b))
           (Bigint.of_int c)
       in
       let s = Bigint.isqrt n in
       Bigint.leq (Bigint.mul s s) n
       && Bigint.lt n (Bigint.mul (Bigint.succ s) (Bigint.succ s)))

let prop_sqrt_upper =
  qcheck ~count:300 "sqrt_upper: upper bound, tight to 1e-6"
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
       let q = Rational.of_ints a b in
       let s = Rational.sqrt_upper q in
       Rational.leq q (Rational.mul s s)
       && Rational.to_float s <= sqrt (Rational.to_float q) +. 1e-6)

let prop_ln_upper =
  qcheck ~count:300 "ln_upper: upper bound, slack < 0.35"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 1_000))
    (fun (a, b) ->
       (* x = 1 + a/b ranges over [1, 10^6] *)
       let x = Rational.add Rational.one (Rational.of_ints a b) in
       let u = Rational.to_float (Rational.ln_upper x) in
       let l = log (Rational.to_float x) in
       u >= l -. 1e-9 && u <= l +. 0.35)

let conf_95 = Rational.of_ints 19 20
let eps_05 = Rational.of_ints 1 20

let test_hoeffding () =
  let log_term = Sample.Bound.log_term ~confidence:conf_95 ~intervals:1 in
  let hw m = Sample.Bound.hoeffding ~range:Rational.one ~log_term ~m in
  Alcotest.(check bool) "m=768 converges at ε=1/20" true
    (Rational.leq (hw 768) eps_05);
  Alcotest.(check bool) "m=100 does not" false (Rational.leq (hw 100) eps_05);
  let widths = List.map hw [ 1; 2; 4; 16; 64; 256; 1024 ] in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> Rational.lt b a && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly decreasing in m" true (decreasing widths);
  (* more simultaneous intervals ⇒ wider intervals (union bound) *)
  let lt16 = Sample.Bound.log_term ~confidence:conf_95 ~intervals:16 in
  Alcotest.(check bool) "union bound widens" true
    (Rational.lt (hw 256)
       (Sample.Bound.hoeffding ~range:Rational.one ~log_term:lt16 ~m:256))

let test_bernstein () =
  let log_term = Sample.Bound.log_term ~confidence:conf_95 ~intervals:1 in
  let range = Rational.one in
  (* zero empirical variance: Bernstein beats Hoeffding at decent m *)
  let b = Sample.Bound.bernstein ~range ~log_term ~m:256 ~sum:0 ~sumsq:0 in
  let h = Sample.Bound.hoeffding ~range ~log_term ~m:256 in
  Alcotest.(check bool) "zero variance: bernstein < hoeffding" true
    (Rational.lt b h);
  (* m < 2 falls back to Hoeffding *)
  check_rational "m=1 falls back"
    (Sample.Bound.hoeffding ~range ~log_term ~m:1)
    (Sample.Bound.bernstein ~range ~log_term ~m:1 ~sum:1 ~sumsq:1)

(* ------------------------------------------------------------------ *)
(* Seeded PRNG                                                         *)
(* ------------------------------------------------------------------ *)

let test_rng () =
  let stream seed = List.init 100 (fun _ -> Sample.Rng.int (seed ()) 1000) in
  let fresh s () = Sample.Rng.create s in
  (* one shared generator per stream *)
  let draws s =
    let r = Sample.Rng.create s in
    List.init 100 (fun _ -> Sample.Rng.int r 1000)
  in
  ignore (stream (fresh 1));
  Alcotest.(check (list int)) "same seed, same stream" (draws 42) (draws 42);
  Alcotest.(check bool) "different seeds differ" false (draws 1 = draws 2);
  let path p =
    let r = Sample.Rng.of_path 7 p in
    List.init 50 (fun _ -> Sample.Rng.int r 1000)
  in
  Alcotest.(check bool) "substreams [1] vs [2] differ" false
    (path [ 1 ] = path [ 2 ]);
  Alcotest.(check (list int)) "substream is path-deterministic"
    (path [ 3; 4 ]) (path [ 3; 4 ]);
  let r = Sample.Rng.create 5 in
  Alcotest.(check bool) "int bound respected" true
    (List.for_all (fun _ -> let d = Sample.Rng.int r 7 in 0 <= d && d < 7)
       (List.init 1000 Fun.id));
  let trues =
    let r = Sample.Rng.create 11 in
    List.fold_left
      (fun acc _ -> if Sample.Rng.bool r then acc + 1 else acc)
      0 (List.init 1000 Fun.id)
  in
  Alcotest.(check bool) "bool roughly balanced" true
    (400 <= trues && trues <= 600);
  Alcotest.(check bool) "zero bound rejected" true
    (try ignore (Sample.Rng.int (Sample.Rng.create 0) 0); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Config hygiene                                                      *)
(* ------------------------------------------------------------------ *)

let test_strings () =
  List.iter
    (fun s ->
       Alcotest.(check (option string))
         "strategy round-trips" (Some (Sample.strategy_to_string s))
         (Option.map Sample.strategy_to_string
            (Sample.strategy_of_string (Sample.strategy_to_string s))))
    [ Sample.Monte_carlo; Sample.Stratified; Sample.Hybrid ];
  Alcotest.(check bool) "monte-carlo alias" true
    (Sample.strategy_of_string "monte-carlo" = Some Sample.Monte_carlo);
  Alcotest.(check bool) "junk strategy" true
    (Sample.strategy_of_string "banana" = None);
  List.iter
    (fun b ->
       Alcotest.(check bool) "bound round-trips" true
         (Sample.bound_of_string (Sample.bound_to_string b) = Some b))
    [ Sample.Hoeffding; Sample.Bernstein ];
  Alcotest.(check bool) "junk bound" true (Sample.bound_of_string "x" = None)

let test_validate () =
  let rejects name k =
    Alcotest.(check bool) name true
      (try ignore (k ()); false with Invalid_argument _ -> true)
  in
  rejects "epsilon 0" (fun () ->
      Sample.config ~epsilon:Rational.zero ());
  rejects "negative epsilon" (fun () ->
      Sample.config ~epsilon:(Rational.of_ints (-1) 20) ());
  rejects "confidence 1" (fun () -> Sample.config ~confidence:Rational.one ());
  rejects "confidence 0" (fun () ->
      Sample.config ~confidence:Rational.zero ());
  rejects "max_draws 0" (fun () -> Sample.config ~max_draws:0 ());
  rejects "batch 0" (fun () -> Sample.config ~batch:0 ());
  rejects "negative exact_cap" (fun () -> Sample.config ~exact_cap:(-1) ());
  Sample.validate Sample.default

let test_universe_guard () =
  let f1 = fact "R" [ "1" ] in
  Alcotest.(check bool) "lineage outside the universe" true
    (try
       ignore
         (Sample.shapley Sample.default ~universe:[] (Bform.Fv f1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate fact in universe" true
    (try
       ignore
         (Sample.shapley Sample.default ~universe:[ f1; f1 ] (Bform.Fv f1));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Hybrid all-strata-exact ≡ exact engines (rational equality)         *)
(* ------------------------------------------------------------------ *)

(* Corpus instances have <= 6 endogenous facts, so C(n-1,k) <= 32 and the
   default exact_cap of 512 keeps every stratum exact: the hybrid result
   must equal the exact engines as rationals, with a zero-width CI. *)
let prop_hybrid_exact =
  qcheck ~count:300 "hybrid all-strata-exact = exact engine, zero width"
    Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let e = Engine.create ~backend:(`Sample Sample.default) q db in
       let est = Engine.svc_all e in
       let r = Option.get (Engine.sample_report e) in
       values_equal est (Svc.svc_all_naive q db)
       && r.Sample.all_converged
       && Rational.is_zero r.Sample.max_half_width)

(* ------------------------------------------------------------------ *)
(* CI coverage: the exact value lies inside every reported interval     *)
(* ------------------------------------------------------------------ *)

(* δ = 10⁻⁶: any observed miss over 600 cases is a soundness bug, not a
   statistical fluke.  exact_cap 2 forces the hybrid to actually sample;
   ε = 1/1000 keeps the budget (rather than convergence) the binding
   constraint, so the intervals are genuinely sampled ones. *)
let strategies = [| Sample.Monte_carlo; Sample.Stratified; Sample.Hybrid |]

let coverage_cfg seed =
  Sample.config
    ~strategy:strategies.(seed mod 3)
    ~seed
    ~epsilon:(Rational.of_ints 1 1000)
    ~confidence:(Rational.of_ints 999_999 1_000_000)
    ~max_draws:256 ~batch:64 ~exact_cap:2 ()

let inside_ci (r : Sample.report) exact =
  Array.for_all
    (fun (e : Sample.estimate) ->
       let v = List.assoc e.Sample.fact exact in
       Rational.leq
         (Rational.abs (Rational.sub e.Sample.value v))
         e.Sample.half_width)
    r.Sample.estimates

let prop_ci_coverage =
  qcheck ~count:600 "exact Shapley value inside the reported CI"
    Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let e = Engine.create ~backend:(`Sample (coverage_cfg seed)) q db in
       ignore (Engine.svc_all e);
       inside_ci
         (Option.get (Engine.sample_report e))
         (Svc.svc_all_naive q db))

let prop_banzhaf_coverage =
  qcheck ~count:150 "exact Banzhaf value inside the reported CI"
    Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let e = Engine.create ~backend:(`Sample (coverage_cfg seed)) q db in
       ignore (Engine.banzhaf_all e);
       inside_ci
         (Option.get (Engine.sample_report e))
         (List.map
            (fun f -> (f, Svc.banzhaf q db f))
            (Database.endo_list db)))

(* ------------------------------------------------------------------ *)
(* Seeded determinism                                                  *)
(* ------------------------------------------------------------------ *)

let prop_determinism =
  qcheck ~count:60 "same seed ⇒ bit-identical values at any jobs count"
    Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let cfg = coverage_cfg seed in
       let run jobs =
         let e = Engine.create ~jobs ~backend:(`Sample cfg) q db in
         let v = Engine.svc_all e in
         (v, Stats.normalize (Engine.stats e))
       in
       let v1, s1 = run 1 in
       let v4, s4 = run 4 in
       let v1', s1' = run 1 in
       let v4', s4' = run 4 in
       (* values are jobs-invariant; normalized stats are rerun-invariant
          at each jobs count (the jobs field itself legitimately differs
          across jobs counts) *)
       values_equal v1 v4 && values_equal v1 v1' && values_equal v4 v4'
       && s1 = s1' && s4 = s4')

(* the estimates really are a function of the seed: on a non-trivial
   instance, changing the seed changes the sampled permutations and so
   the pivot counts *)
let test_seed_matters () =
  let db = Gen.bipartite ~rows:2 in
  let run s =
    let cfg =
      Sample.config ~strategy:Sample.Monte_carlo ~seed:s ~max_draws:128 ()
    in
    Engine.svc_all (Engine.create ~backend:(`Sample cfg) qrst db)
  in
  Alcotest.(check bool) "seed 0 vs seed 1" false (values_equal (run 0) (run 1))

(* ------------------------------------------------------------------ *)
(* Stopping rule                                                       *)
(* ------------------------------------------------------------------ *)

let test_stopping () =
  let db = Gen.bipartite ~rows:2 in
  (* generous ε: one batch suffices and the loop stops there *)
  let loose =
    Sample.config ~strategy:Sample.Monte_carlo ~seed:3
      ~epsilon:Rational.one ~max_draws:4096 ~batch:64 ()
  in
  let e = Engine.create ~backend:(`Sample loose) qrst db in
  ignore (Engine.svc_all e);
  let r = Option.get (Engine.sample_report e) in
  Alcotest.(check int) "stops after the first batch" 64 r.Sample.total_draws;
  Alcotest.(check bool) "converged" true r.Sample.all_converged;
  (* unreachable ε: the budget binds exactly, and the report says so *)
  let tight =
    Sample.config ~strategy:Sample.Monte_carlo ~seed:3
      ~epsilon:(Rational.of_ints 1 1_000_000) ~max_draws:100 ~batch:64 ()
  in
  let e = Engine.create ~backend:(`Sample tight) qrst db in
  ignore (Engine.svc_all e);
  let r = Option.get (Engine.sample_report e) in
  Alcotest.(check int) "budget binds exactly" 100 r.Sample.total_draws;
  Alcotest.(check bool) "not converged" false r.Sample.all_converged;
  Alcotest.(check bool) "honest width: hw > ε" true
    (Rational.lt (Rational.of_ints 1 1_000_000) r.Sample.max_half_width)

(* the stats pipeline reports what the sampler did *)
let test_stats_surface () =
  let db = Gen.bipartite ~rows:2 in
  let cfg =
    Sample.config ~strategy:Sample.Monte_carlo ~seed:9 ~max_draws:128
      ~batch:64 ()
  in
  let e = Engine.create ~backend:(`Sample cfg) qrst db in
  ignore (Engine.svc_all e);
  let s = Engine.stats e in
  Alcotest.(check string) "strategy" "mc" s.Stats.sample_strategy;
  Alcotest.(check int) "seed" 9 s.Stats.sample_seed;
  let r = Option.get (Engine.sample_report e) in
  Alcotest.(check int) "draws agree with the report" r.Sample.total_draws
    s.Stats.sample_draws;
  Alcotest.(check string) "epsilon echoed" "1/20" s.Stats.sample_epsilon

let suite =
  [
    Alcotest.test_case "isqrt: units and guard" `Quick test_isqrt;
    prop_isqrt;
    prop_sqrt_upper;
    prop_ln_upper;
    Alcotest.test_case "hoeffding width" `Quick test_hoeffding;
    Alcotest.test_case "bernstein width" `Quick test_bernstein;
    Alcotest.test_case "seeded rng" `Quick test_rng;
    Alcotest.test_case "strategy/bound strings" `Quick test_strings;
    Alcotest.test_case "config validation" `Quick test_validate;
    Alcotest.test_case "universe guards" `Quick test_universe_guard;
    prop_hybrid_exact;
    prop_ci_coverage;
    prop_banzhaf_coverage;
    prop_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_matters;
    Alcotest.test_case "stopping rule" `Quick test_stopping;
    Alcotest.test_case "stats surface" `Quick test_stats_surface;
  ]
