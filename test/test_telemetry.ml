(* Telemetry subsystem suite: fake-clock unit tests, qcheck laws for
   span well-formedness and metric-merge algebra, byte-exact golden
   exporter output, and differential regressions proving telemetry is
   observationally free — telemetry-on runs produce bit-identical
   Shapley values and the same pinned stats JSON shape as telemetry-off
   runs, for every backend × jobs combination. *)

open Test_util

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let demo_db =
  Database.make
    ~endo:
      [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ];
        fact "R" [ "3" ]; fact "S" [ "3"; "2" ] ]
    ~exo:[ fact "T" [ "9" ] ]

let values_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2
       (fun (f1, x1) (f2, x2) -> Fact.equal f1 f2 && Rational.equal x1 x2)
       v1 v2

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_fake_clock () =
  let clock, advance = Telemetry.Clock.fake ~start:10. () in
  Alcotest.(check (float 0.)) "start" 10. (clock ());
  advance 2.5;
  Alcotest.(check (float 0.)) "advanced" 12.5 (clock ());
  advance 0.;
  Alcotest.(check (float 0.)) "zero advance ok" 12.5 (clock ());
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Telemetry.Clock.fake: cannot advance backwards")
    (fun () -> advance (-1.))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let scripted_tracer () =
  let clock, advance = Telemetry.Clock.fake () in
  let t = Telemetry.create ~clock () in
  Telemetry.span t "engine.eval" (fun () ->
      advance 0.001;
      Telemetry.span t ~attrs:[ ("fact", "a") ] "engine.fact" (fun () ->
          advance 0.002);
      Telemetry.span t "engine.fact" (fun () -> advance 0.001));
  let c = Telemetry.counter t "engine.compilations" in
  Telemetry.Counter.add c 5;
  let h = Telemetry.histogram t "engine.chunk_sizes" in
  Telemetry.Histogram.observe h 3;
  Telemetry.Histogram.observe h 3;
  Telemetry.Histogram.observe h 7;
  t

let test_span_nesting () =
  let t = scripted_tracer () in
  let evs = Telemetry.events t in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let by_name n = List.filter (fun e -> e.Telemetry.ev_name = n) evs in
  (match by_name "engine.eval" with
   | [ e ] ->
     Alcotest.(check int) "root depth" 0 e.Telemetry.ev_depth;
     Alcotest.(check (list string)) "root path" [ "engine.eval" ]
       e.Telemetry.ev_path;
     Alcotest.(check (float 1e-9)) "root duration" 0.004 e.Telemetry.ev_dur_s
   | _ -> Alcotest.fail "expected exactly one engine.eval span");
  match by_name "engine.fact" with
  | [ e1; e2 ] ->
    List.iter
      (fun e ->
         Alcotest.(check int) "child depth" 1 e.Telemetry.ev_depth;
         Alcotest.(check (list string)) "child path"
           [ "engine.eval"; "engine.fact" ] e.Telemetry.ev_path)
      [ e1; e2 ];
    Alcotest.(check (list (pair string string))) "attrs kept"
      [ ("fact", "a") ] e1.Telemetry.ev_attrs
  | _ -> Alcotest.fail "expected exactly two engine.fact spans"

let test_exit_mismatch () =
  let t = Telemetry.create ~clock:(fst (Telemetry.Clock.fake ())) () in
  let outer = Telemetry.enter t "outer" in
  let _inner = Telemetry.enter t "inner" in
  (try
     Telemetry.exit t outer;
     Alcotest.fail "exiting a non-innermost span must raise"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "both spans still open" 2 (Telemetry.open_spans t)

let test_exception_closes_span () =
  let clock, advance = Telemetry.Clock.fake () in
  let t = Telemetry.create ~clock () in
  (try
     Telemetry.span t "boom" (fun () ->
         advance 0.003;
         failwith "inner failure")
   with Failure _ -> ());
  Alcotest.(check int) "no span left open" 0 (Telemetry.open_spans t);
  match Telemetry.events t with
  | [ e ] ->
    Alcotest.(check string) "span recorded" "boom" e.Telemetry.ev_name;
    Alcotest.(check (float 1e-9)) "duration up to the raise" 0.003
      e.Telemetry.ev_dur_s
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)

let test_disabled_tracer () =
  let t = Telemetry.disabled () in
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  let r = Telemetry.span t "anything" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk still runs" 42 r;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Telemetry.events t));
  (* the metrics registry stays fully functional *)
  let c = Telemetry.counter t "c" in
  Telemetry.Counter.incr c;
  Alcotest.(check int) "counter live" 1 (Telemetry.Counter.value c)

let test_fork_join () =
  let clock, advance = Telemetry.Clock.fake () in
  let t = Telemetry.create ~clock () in
  let child = Telemetry.fork t ~track:3 ~name:"worker 2" in
  Telemetry.span child "chunk" (fun () -> advance 0.001);
  Alcotest.(check int) "child events invisible before join" 0
    (List.length (Telemetry.events t));
  Telemetry.join t child;
  (match Telemetry.events t with
   | [ e ] ->
     Alcotest.(check string) "joined span" "chunk" e.Telemetry.ev_name;
     Alcotest.(check int) "on its track" 3 e.Telemetry.ev_track
   | evs -> Alcotest.failf "expected one event, got %d" (List.length evs));
  Alcotest.(check (list (pair int string))) "tracks registered"
    [ (0, "main"); (3, "worker 2") ] (Telemetry.tracks t);
  (* the registry is shared: a child counter is the parent's counter *)
  Telemetry.Counter.incr (Telemetry.counter child "shared");
  Alcotest.(check int) "shared registry" 1
    (Telemetry.Counter.value (Telemetry.counter t "shared"))

let test_registry_kind_mismatch () =
  let t = Telemetry.disabled () in
  ignore (Telemetry.counter t "m");
  try
    ignore (Telemetry.gauge t "m");
    Alcotest.fail "kind mismatch must raise"
  with Invalid_argument _ -> ()

let test_aggregate () =
  let t = scripted_tracer () in
  let agg = Array.to_list (Telemetry.aggregate t) in
  Alcotest.(check (list (triple string int (float 1e-9)))) "rollup"
    [ ("engine.eval", 1, 0.004); ("engine.fact", 2, 0.003) ] agg

(* ------------------------------------------------------------------ *)
(* qcheck: span well-formedness and merge algebra                      *)
(* ------------------------------------------------------------------ *)

(* A random span program: a forest of nested spans, executed on a fake
   clock.  Whatever the shape, the record must be well-formed: one event
   per span, every event's path ends in its own name and has length
   depth + 1, and a parent's recorded interval contains its children. *)
type span_tree = Node of int * span_tree list

let tree_gen =
  QCheck2.Gen.(
    sized_size (int_bound 5) @@ fix (fun self n ->
        if n = 0 then return []
        else
          list_size (int_bound 3)
            (map (fun (t, cs) -> Node (t, cs))
               (pair (int_bound 3) (self (n / 2))))))

let prop_span_well_formed =
  qcheck ~count:200 "span forest is well-formed" tree_gen (fun forest ->
      let clock, advance = Telemetry.Clock.fake () in
      let t = Telemetry.create ~clock () in
      let total = ref 0 in
      let rec run forest =
        List.iteri
          (fun i (Node (ticks, children)) ->
             incr total;
             Telemetry.span t (Printf.sprintf "s%d" i) (fun () ->
                 advance (0.001 *. float_of_int ticks);
                 run children))
          forest
      in
      run forest;
      let evs = Telemetry.events t in
      List.length evs = !total
      && Telemetry.open_spans t = 0
      && List.for_all
           (fun e ->
              List.length e.Telemetry.ev_path = e.Telemetry.ev_depth + 1
              && List.nth e.Telemetry.ev_path e.Telemetry.ev_depth
                 = e.Telemetry.ev_name
              && e.Telemetry.ev_dur_s >= 0.)
           evs)

let counter_of_list l =
  let c = Telemetry.Counter.create () in
  List.iter (Telemetry.Counter.add c) l;
  c

let prop_counter_merge =
  qcheck ~count:400 "counter merge is associative and commutative"
    QCheck2.Gen.(triple (list small_int) (list small_int) (list small_int))
    (fun (a, b, c) ->
       let ca () = counter_of_list a
       and cb () = counter_of_list b
       and cc () = counter_of_list c in
       let v x = Telemetry.Counter.value x in
       let m = Telemetry.Counter.merge in
       v (m (m (ca ()) (cb ())) (cc ())) = v (m (ca ()) (m (cb ()) (cc ())))
       && v (m (ca ()) (cb ())) = v (m (cb ()) (ca ())))

let prop_histogram_merge =
  qcheck ~count:400 "histogram merge is associative and commutative"
    QCheck2.Gen.(
      triple
        (list (int_bound 20))
        (list (int_bound 20))
        (list (int_bound 20)))
    (fun (a, b, c) ->
       let h = Telemetry.Histogram.of_list in
       let m = Telemetry.Histogram.merge in
       let eq = Telemetry.Histogram.equal in
       eq (m (m (h a) (h b)) (h c)) (m (h a) (m (h b) (h c)))
       && eq (m (h a) (h b)) (m (h b) (h a))
       && Telemetry.Histogram.total (m (h a) (h b))
          = List.fold_left ( + ) 0 (a @ b))

(* ------------------------------------------------------------------ *)
(* Golden exporter output (byte-exact, fake clock)                     *)
(* ------------------------------------------------------------------ *)

let golden_summary =
  "telemetry summary\n\
   spans (track 0, main):\n\
  \  engine.eval                                 1x  time  : 4.00ms\n\
  \    engine.fact                               2x  time  : 3.00ms\n\
   counters:\n\
  \  engine.compilations                      5\n\
   histograms:\n\
  \  engine.chunk_sizes                       n=3 total=13 min=3 max=7\n"

let golden_chrome =
  "{\"traceEvents\":[\n\
   {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"main\"}},\n\
   {\"name\":\"engine.fact\",\"cat\":\"svc\",\"ph\":\"X\",\"ts\":1000.000,\"dur\":2000.000,\"pid\":1,\"tid\":0,\"args\":{\"fact\":\"a\"}},\n\
   {\"name\":\"engine.fact\",\"cat\":\"svc\",\"ph\":\"X\",\"ts\":3000.000,\"dur\":1000.000,\"pid\":1,\"tid\":0},\n\
   {\"name\":\"engine.eval\",\"cat\":\"svc\",\"ph\":\"X\",\"ts\":0.000,\"dur\":4000.000,\"pid\":1,\"tid\":0},\n\
   {\"name\":\"engine.compilations\",\"ph\":\"C\",\"ts\":4000.000,\"pid\":1,\"tid\":0,\"args\":{\"value\":5}},\n\
   {\"name\":\"engine.chunk_sizes\",\"ph\":\"C\",\"ts\":4000.000,\"pid\":1,\"tid\":0,\"args\":{\"count\":3,\"total\":13}}\n\
   ],\"displayTimeUnit\":\"ms\"}\n"

let test_golden_summary () =
  Alcotest.(check string) "summary tree is byte-exact" golden_summary
    (Telemetry.Export.summary (scripted_tracer ()))

let test_golden_chrome () =
  Alcotest.(check string) "chrome trace is byte-exact" golden_chrome
    (Telemetry.Export.chrome (scripted_tracer ()))

let test_chrome_round_trip () =
  (* whatever we export must pass our own schema validation *)
  match Tracejson.parse golden_chrome with
  | Error msg -> Alcotest.failf "exporter output failed to parse: %s" msg
  | Ok j ->
    (match Tracejson.validate j with
     | Error msg -> Alcotest.failf "exporter output failed schema: %s" msg
     | Ok evs -> Alcotest.(check int) "all events validated" 6 (List.length evs))

let test_tracejson_malformed () =
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "truncated JSON" true (is_err (Tracejson.parse "{\"a\":"));
  Alcotest.(check bool) "trailing garbage" true (is_err (Tracejson.parse "{} x"));
  Alcotest.(check bool) "bad escape" true (is_err (Tracejson.parse "\"\\q\""));
  let validated text =
    match Tracejson.parse text with
    | Error _ -> Error "parse"
    | Ok j -> Tracejson.validate j
  in
  Alcotest.(check bool) "missing traceEvents" true (is_err (validated "{}"));
  Alcotest.(check bool) "traceEvents not an array" true
    (is_err (validated "{\"traceEvents\":3}"));
  Alcotest.(check bool) "event missing ph" true
    (is_err (validated "{\"traceEvents\":[{\"name\":\"x\"}]}"));
  Alcotest.(check bool) "unknown phase" true
    (is_err
       (validated
          "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Z\",\"pid\":1,\"tid\":0,\"ts\":0}]}"));
  Alcotest.(check bool) "X event without dur" true
    (is_err
       (validated
          "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0}]}"))

(* ------------------------------------------------------------------ *)
(* Differential: telemetry is observationally free                     *)
(* ------------------------------------------------------------------ *)

(* The stats JSON shape predates telemetry and is pinned by the cram
   tests and the BENCH baselines; the registry projection must emit
   exactly these keys in exactly this order. *)
let pinned_stats_keys =
  [ "players"; "compilations"; "conditionings"; "cache_hits"; "cache_misses";
    "cache_size"; "cache_capacity"; "cache_drops"; "poly_ops"; "jobs";
    "par_facts"; "par_cache_hits"; "par_cache_misses"; "par_steals";
    "compile_ms"; "eval_ms"; "backend"; "circuit_nodes"; "circuit_edges";
    "circuit_smoothing"; "circuit_cache_hits"; "circuit_cache_misses";
    "circuit_cache_drops"; "circuit_compile_ms"; "circuit_traverse_ms";
    "sample_strategy"; "sample_seed"; "sample_draws"; "sample_exact_strata";
    "sample_sampled_strata"; "sample_max_hw"; "sample_epsilon";
    "sample_confidence"; "sample_converged" ]

let json_keys text =
  match Tracejson.parse text with
  | Ok (Tracejson.Obj fields) -> List.map fst fields
  | Ok _ -> Alcotest.fail "stats JSON is not an object"
  | Error msg -> Alcotest.failf "stats JSON failed to parse: %s" msg

let strip_wallclock text =
  (* compare JSON field-for-field with wall-clock values neutralized *)
  match Tracejson.parse text with
  | Ok (Tracejson.Obj fields) ->
    List.map
      (fun (k, v) ->
         if
           List.mem k
             [ "compile_ms"; "eval_ms"; "circuit_compile_ms";
               "circuit_traverse_ms"; "par_steals" ]
         then (k, Tracejson.Null)
         else (k, v))
      fields
  | _ -> Alcotest.fail "stats JSON is not an object"

let backends_jobs =
  [ (`Conditioning, 1); (`Conditioning, 4); (`Circuit, 1); (`Circuit, 4);
    (`Auto, 1); (`Auto, 4); (`Sample Sample.default, 1);
    (`Sample Sample.default, 4) ]

let test_differential_off_vs_on () =
  List.iter
    (fun (backend, jobs) ->
       let off = Engine.create ~jobs ~backend qrst demo_db in
       let tel = Telemetry.create ~enabled:true () in
       let on = Engine.create ~tel ~jobs ~backend qrst demo_db in
       let label =
         Printf.sprintf "backend=%s jobs=%d"
           (match Engine.backend off with
            | `Conditioning -> "conditioning"
            | `Circuit -> "circuit"
            | `Sample _ -> "sample")
           jobs
       in
       let v_off = Engine.svc_all off and v_on = Engine.svc_all on in
       Alcotest.(check bool)
         (label ^ ": values bit-identical") true (values_equal v_off v_on);
       (* pinned JSON shape, field for field *)
       let j_off = Stats.to_json (Engine.stats off)
       and j_on = Stats.to_json (Engine.stats on) in
       Alcotest.(check (list string))
         (label ^ ": pinned key order") pinned_stats_keys (json_keys j_off);
       Alcotest.(check (list string))
         (label ^ ": same keys with telemetry on") (json_keys j_off)
         (json_keys j_on);
       Alcotest.(check bool)
         (label ^ ": same values with telemetry on") true
         (strip_wallclock j_off = strip_wallclock j_on))
    backends_jobs

let test_normalize_deterministic () =
  List.iter
    (fun (backend, jobs) ->
       let run () =
         let tel = Telemetry.create ~enabled:true () in
         let e = Engine.create ~tel ~jobs ~backend qrst demo_db in
         ignore (Engine.svc_all e);
         Stats.normalize (Engine.stats e)
       in
       let s1 = run () and s2 = run () in
       Alcotest.(check bool)
         (Printf.sprintf "normalize deterministic (jobs=%d)" jobs)
         true (s1 = s2);
       (* the span rollup survives normalization with durations zeroed *)
       Alcotest.(check bool) "span durations zeroed" true
         (Array.for_all (fun (_, _, d) -> d = 0.) s1.Stats.span_s);
       Alcotest.(check bool) "span names kept" true
         (jobs = 1 || Array.exists (fun (n, _, _) -> n = "engine.slice") s1.Stats.span_s))
    [ (`Conditioning, 1); (`Conditioning, 4); (`Circuit, 1) ]

(* --jobs N: the per-domain trace lanes must reconstruct the same chunk
   counts as the par_* stats — one engine.slice span per slot on track
   slot + 1, its "facts" attribute equal to that slot's d_facts. *)
let test_parallel_lanes_match_stats () =
  let jobs = 4 in
  let tel = Telemetry.create ~enabled:true () in
  let e = Engine.create ~tel ~jobs ~backend:`Conditioning qrst demo_db in
  ignore (Engine.svc_all e);
  let stats = Engine.stats e in
  let chrome = Telemetry.Export.chrome tel in
  let evs =
    match Tracejson.parse chrome with
    | Ok j ->
      (match Tracejson.validate j with
       | Ok evs -> evs
       | Error msg -> Alcotest.failf "invalid chrome trace: %s" msg)
    | Error msg -> Alcotest.failf "chrome trace failed to parse: %s" msg
  in
  let slices =
    List.filter
      (fun e -> e.Tracejson.t_ph = "X" && e.Tracejson.t_name = "engine.slice")
      evs
  in
  Alcotest.(check int) "one slice span per slot" jobs (List.length slices);
  List.iter
    (fun ev ->
       let slot = ev.Tracejson.t_tid - 1 in
       let facts =
         match List.assoc_opt "facts" ev.Tracejson.t_args with
         | Some (Tracejson.Str s) -> int_of_string s
         | _ -> Alcotest.fail "slice span lost its facts attribute"
       in
       Alcotest.(check int)
         (Printf.sprintf "slot %d lane = d_facts" slot)
         stats.Stats.domains.(slot).Stats.d_facts facts)
    slices;
  Alcotest.(check int) "lanes sum to par_facts"
    (Stats.par_facts stats)
    (List.fold_left
       (fun acc ev ->
          match List.assoc_opt "facts" ev.Tracejson.t_args with
          | Some (Tracejson.Str s) -> acc + int_of_string s
          | _ -> acc)
       0 slices)

let test_pool_telemetry () =
  let tel = Telemetry.create ~enabled:true () in
  let pool = Pool.create ~domains:3 in
  let out, stats =
    Pool.map_stats ~tel ~chunk:2 pool (fun x -> x * x) (Array.init 10 Fun.id)
  in
  Alcotest.(check (array int)) "values unchanged"
    (Array.init 10 (fun i -> i * i)) out;
  let total_claims = Array.fold_left ( + ) 0 stats.Pool.claims in
  Alcotest.(check int) "pool.chunks counter = total claims" total_claims
    (Telemetry.Counter.value (Telemetry.counter tel "pool.chunks"));
  let chunk_spans =
    List.filter
      (fun e -> e.Telemetry.ev_name = "pool.chunk")
      (Telemetry.events tel)
  in
  Alcotest.(check int) "one span per claimed chunk" total_claims
    (List.length chunk_spans);
  (* spans land on tracks 1..domains, never the caller's track 0 *)
  Alcotest.(check bool) "spans on worker tracks" true
    (List.for_all
       (fun e -> e.Telemetry.ev_track >= 1 && e.Telemetry.ev_track <= 3)
       chunk_spans)

let suite =
  [
    Alcotest.test_case "fake clock" `Quick test_fake_clock;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "exit mismatch raises" `Quick test_exit_mismatch;
    Alcotest.test_case "exception closes span" `Quick test_exception_closes_span;
    Alcotest.test_case "disabled tracer" `Quick test_disabled_tracer;
    Alcotest.test_case "fork/join" `Quick test_fork_join;
    Alcotest.test_case "registry kind mismatch" `Quick test_registry_kind_mismatch;
    Alcotest.test_case "aggregate rollup" `Quick test_aggregate;
    prop_span_well_formed;
    prop_counter_merge;
    prop_histogram_merge;
    Alcotest.test_case "golden summary" `Quick test_golden_summary;
    Alcotest.test_case "golden chrome trace" `Quick test_golden_chrome;
    Alcotest.test_case "chrome round-trips through the validator" `Quick
      test_chrome_round_trip;
    Alcotest.test_case "tracejson rejects malformed input" `Quick
      test_tracejson_malformed;
    Alcotest.test_case "telemetry-off = telemetry-on (values and stats)"
      `Quick test_differential_off_vs_on;
    Alcotest.test_case "normalize is deterministic across real runs" `Quick
      test_normalize_deterministic;
    Alcotest.test_case "parallel trace lanes match par_* stats" `Quick
      test_parallel_lanes_match_stats;
    Alcotest.test_case "pool chunk spans and counters" `Quick
      test_pool_telemetry;
  ]
