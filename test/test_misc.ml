open Test_util

(* Precision tests for behaviors not covered elsewhere: guards, printers,
   stated invariants of the reductions, and edge cases. *)

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

(* Prop. 3.3's "moreover": the FGMC ⇄ SPPQE reductions only query the
   oracle on the SAME underlying partitioned database. *)
let test_same_database_invariant () =
  let db =
    Database.make ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ]
      ~exo:[ fact "T" [ "9" ] ]
  in
  let sppqe =
    Oracle.make (fun (db', p) ->
        Alcotest.(check bool) "same database" true (Database.equal db db');
        Pqe.sppqe qrst db' p)
  in
  ignore (Fgmc_sppqe.fgmc_via_sppqe ~sppqe db);
  let fgmc =
    Oracle.make (fun (db', j) ->
        Alcotest.(check bool) "same database" true (Database.equal db db');
        Model_counting.fgmc qrst db' j)
  in
  ignore (Fgmc_sppqe.sppqe_via_fgmc ~fgmc db Rational.half)

let test_svc_all_empty () =
  let db = Database.make ~endo:[] ~exo:[ fact "R" [ "1" ] ] in
  Alcotest.(check int) "no players" 0 (List.length (Svc.svc_all qrst db))

let test_database_remove_absent () =
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  Alcotest.(check bool) "noop" true
    (Database.equal db (Database.remove (fact "Z" [ "9" ]) db))

let test_db_text_load_missing () =
  match Db_text.load "/nonexistent/path/db.txt" with
  | exception Sys_error _ -> ()
  | _ -> Alcotest.fail "expected Sys_error"

let test_query_printers () =
  Alcotest.(check string) "true" "⊤" (Query.to_string Query.True);
  Alcotest.(check bool) "cq prefix" true
    (String.length (Query.to_string qrst) > 4
     && String.sub (Query.to_string qrst) 0 3 = "CQ[");
  let both = Query.And (Query_parse.parse "R(?x)", Query_parse.parse "S(?x)") in
  Alcotest.(check string) "and" "(CQ[R(?x)] ∧ CQ[S(?x)])" (Query.to_string both)

let test_query_parse_errors () =
  Alcotest.check_raises "rpq with variables"
    (Invalid_argument "Query_parse: RPQ endpoints must be constants at offset 5")
    (fun () -> ignore (Query_parse.parse "rpq: A(?x,t)"));
  Alcotest.check_raises "rpq multi-atom"
    (Invalid_argument "Query_parse: an RPQ is a single path atom at offset 5")
    (fun () -> ignore (Query_parse.parse "rpq: A(s,t), B(t,u)"))

let test_safety_wide_union_unknown () =
  (* more than 6 pairwise-overlapping disjuncts: inclusion–exclusion is cut
     off and the verdict must be the conservative Unknown *)
  let cqs =
    List.init 7 (fun i ->
        Cq.of_atoms
          [ Atom.make "R" [ Term.var "x"; Term.var "y" ];
            Atom.make (Printf.sprintf "S%d" i) [ Term.var "y" ] ])
  in
  Alcotest.(check string) "unknown" "unknown"
    (Safety.verdict_to_string (Safety.ucq (Ucq.of_cqs cqs)))

let test_dfa_minimize_shrinks () =
  (* Thompson NFAs produce many redundant subset states *)
  let d = Dfa.of_regex (Regex.parse "(A+B)(A+B)") in
  let m = Dfa.minimize d in
  Alcotest.(check bool) "strictly smaller" true (Dfa.num_states m < Dfa.num_states d);
  (* minimal DFA for two-letter words over {A,B}: 3 live states *)
  Alcotest.(check int) "canonical size" 3 (Dfa.num_states m)

let test_words_limit () =
  let ws = Words.words_of_length ~limit:3 (Regex.parse "(A+B)(A+B)(A+B)") 3 in
  Alcotest.(check int) "limit respected" 3 (List.length ws)

let test_prob_db_accessors () =
  let f1 = fact "R" [ "1" ] and f2 = fact "S" [ "2" ] in
  let pdb = Prob_db.make [ (f1, Rational.of_ints 1 4); (f2, Rational.one) ] in
  Alcotest.(check int) "facts" 2 (Fact.Set.cardinal (Prob_db.facts pdb));
  Alcotest.(check int) "image" 2 (List.length (Prob_db.image pdb));
  check_rational "prob lookup" (Rational.of_ints 1 4) (Prob_db.prob pdb f1);
  (match Prob_db.prob pdb (fact "Z" [ "9" ]) with
   | exception Not_found -> ()
   | _ -> Alcotest.fail "expected Not_found")

let test_sppqe_p1_zero_coefficient () =
  (* p = 1 with the full database not a support: probability 0 *)
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  check_rational "p=1 unsat" Rational.zero (Pqe.sppqe qrst db Rational.one)

let test_const_svc_induced () =
  let fs = facts [ fact "R" [ "a"; "b" ]; fact "R" [ "b"; "c" ] ] in
  let inst = Const_svc.make_instance ~facts:fs ~endo_consts:(Term.Sset.singleton "a") in
  Alcotest.(check bool) "exo consts" true
    (Term.Sset.equal (Const_svc.exo_consts inst) (Term.Sset.of_list [ "b"; "c" ]));
  let induced = Const_svc.induced inst Term.Sset.empty in
  Alcotest.(check int) "only the b-c fact" 1 (Fact.Set.cardinal induced);
  let full = Const_svc.induced inst (Term.Sset.singleton "a") in
  Alcotest.(check int) "all facts" 2 (Fact.Set.cardinal full)

let test_shatter_rel_names () =
  let a = { Shatter.base = "R"; pattern = [ Some "a"; None ]; args = [ Term.var "y" ] } in
  Alcotest.(check string) "specialized name" "R@a,*" (Shatter.satom_rel a)

let test_oracle_composition () =
  (* oracles compose: SVC via FGMC via SPPQE via FGMC... inner layers all
     counted independently *)
  let inner = Oracle.fgmc_of qrst in
  let middle =
    Oracle.make (fun (db, p) -> Fgmc_sppqe.sppqe_via_fgmc ~fgmc:inner db p)
  in
  let outer =
    Oracle.make (fun (db, j) ->
        Poly.Z.coeff (Fgmc_sppqe.fgmc_via_sppqe ~sppqe:middle db) j)
  in
  let db = Database.make ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ] ~exo:[] in
  let v = Svc_to_fgmc.svc ~fgmc:outer db (fact "R" [ "1" ]) in
  check_rational "three layers deep" (Svc.svc_brute qrst db (fact "R" [ "1" ])) v;
  Alcotest.(check bool) "inner calls accumulated" true (Oracle.calls inner > Oracle.calls outer)

let test_bform_size_pp () =
  let phi =
    Bform.conj [ Bform.fv (fact "R" [ "1" ]); Bform.neg (Bform.fv (fact "S" [ "2" ])) ]
  in
  Alcotest.(check int) "size" 4 (Bform.size phi);
  Alcotest.(check string) "pp" "(R(1) ∧ ¬S(2))" (Format.asprintf "%a" Bform.pp phi)

let test_regex_eps_empty_tokens () =
  Alcotest.(check bool) "underscore is ε" true (Regex.nullable (Regex.parse "_"));
  Alcotest.(check bool) "tilde is ∅" true (Regex.is_empty_lang (Regex.parse "~"));
  Alcotest.(check bool) "A~ collapses" true (Regex.is_empty_lang (Regex.parse "A~"))

let suite =
  [
    Alcotest.test_case "Claim A.2 preserves the database" `Quick test_same_database_invariant;
    Alcotest.test_case "svc_all on empty player set" `Quick test_svc_all_empty;
    Alcotest.test_case "remove absent fact" `Quick test_database_remove_absent;
    Alcotest.test_case "load missing file" `Quick test_db_text_load_missing;
    Alcotest.test_case "query printers" `Quick test_query_printers;
    Alcotest.test_case "query parse errors" `Quick test_query_parse_errors;
    Alcotest.test_case "safety cutoff is conservative" `Quick test_safety_wide_union_unknown;
    Alcotest.test_case "DFA minimization shrinks" `Quick test_dfa_minimize_shrinks;
    Alcotest.test_case "word enumeration limit" `Quick test_words_limit;
    Alcotest.test_case "prob_db accessors" `Quick test_prob_db_accessors;
    Alcotest.test_case "SPPQE at p=1, unsatisfied" `Quick test_sppqe_p1_zero_coefficient;
    Alcotest.test_case "induced databases" `Quick test_const_svc_induced;
    Alcotest.test_case "shattered relation names" `Quick test_shatter_rel_names;
    Alcotest.test_case "oracle composition" `Quick test_oracle_composition;
    Alcotest.test_case "bform size and printing" `Quick test_bform_size_pp;
    Alcotest.test_case "ε and ∅ tokens" `Quick test_regex_eps_empty_tokens;
  ]
