open Test_util

let count_valuations atoms into =
  let n = ref 0 in
  Homomorphism.iter_valuations ~into atoms (fun _ -> incr n);
  !n

let test_single_atom () =
  let atoms = Cq.atoms (Cq.parse "R(?x,?y)") in
  let into = facts [ fact "R" [ "1"; "2" ]; fact "R" [ "3"; "4" ]; fact "S" [ "1"; "2" ] ] in
  Alcotest.(check int) "two matches" 2 (count_valuations atoms into)

let test_join () =
  let atoms = Cq.atoms (Cq.parse "R(?x,?y), S(?y,?z)") in
  let into =
    facts
      [ fact "R" [ "1"; "2" ]; fact "R" [ "1"; "3" ]; fact "S" [ "2"; "4" ];
        fact "S" [ "2"; "5" ] ]
  in
  (* y must be 2: R(1,2) with S(2,4) and S(2,5) *)
  Alcotest.(check int) "join count" 2 (count_valuations atoms into)

let test_constant_rigidity () =
  let atoms = Cq.atoms (Cq.parse "R(?x,b)") in
  let into = facts [ fact "R" [ "1"; "b" ]; fact "R" [ "1"; "c" ] ] in
  Alcotest.(check int) "constant filters" 1 (count_valuations atoms into)

let test_repeated_variable () =
  let atoms = Cq.atoms (Cq.parse "R(?x,?x)") in
  let into = facts [ fact "R" [ "1"; "1" ]; fact "R" [ "1"; "2" ] ] in
  Alcotest.(check int) "diagonal only" 1 (count_valuations atoms into)

let test_initial_binding () =
  let atoms = Cq.atoms (Cq.parse "R(?x,?y)") in
  let into = facts [ fact "R" [ "1"; "2" ]; fact "R" [ "3"; "4" ] ] in
  let binding = Term.Smap.singleton "x" "3" in
  let n = ref 0 in
  Homomorphism.iter_valuations ~into ~binding atoms (fun s ->
      incr n;
      Alcotest.(check string) "x respected" "3" (Term.Smap.find "x" s));
  Alcotest.(check int) "restricted" 1 !n

let test_image () =
  let atoms = Cq.atoms (Cq.parse "R(?x,?y), S(?y)") in
  let subst = Term.Smap.of_seq (List.to_seq [ ("x", "1"); ("y", "2") ]) in
  let img = Homomorphism.image subst atoms in
  Alcotest.check fact_set_t "image" (facts [ fact "R" [ "1"; "2" ]; fact "S" [ "2" ] ]) img;
  Alcotest.check_raises "partial valuation"
    (Invalid_argument "Homomorphism.image: valuation is not total") (fun () ->
        ignore (Homomorphism.image Term.Smap.empty atoms))

let test_minimal_images () =
  (* R(x,y): images in a db where one image strictly contains another is
     impossible for a single atom, so use a join with collapsing *)
  let atoms = Cq.atoms (Cq.parse "R(?x,?y), R(?y,?z)") in
  let into = facts [ fact "R" [ "1"; "1" ]; fact "R" [ "1"; "2" ]; fact "R" [ "2"; "1" ] ] in
  let minimal = Homomorphism.minimal_images ~into atoms in
  (* the loop R(1,1) alone is a minimal image; any 2-fact image containing it
     is dominated *)
  Alcotest.(check bool) "loop is minimal" true
    (List.exists (Fact.Set.equal (facts [ fact "R" [ "1"; "1" ] ])) minimal);
  List.iter
    (fun img ->
       Alcotest.(check bool) "no image contains another" false
         (List.exists
            (fun img' -> Fact.Set.subset img' img && not (Fact.Set.equal img' img))
            minimal))
    minimal

let test_fact_homs () =
  let src = facts [ fact "R" [ "a"; "x" ] ] in
  let into = facts [ fact "R" [ "a"; "b" ]; fact "R" [ "c"; "d" ] ] in
  (* fixing a: x can map to b only (via R(a,b)) *)
  let fixed = Term.Sset.singleton "a" in
  (match Homomorphism.find_fact_hom ~fixed src ~into with
   | Some h ->
     Alcotest.(check string) "a fixed" "a" (Term.Smap.find "a" h);
     Alcotest.(check string) "x image" "b" (Term.Smap.find "x" h)
   | None -> Alcotest.fail "expected hom");
  (* fixing both blocks it unless the exact fact is present *)
  let fixed2 = Term.Sset.of_list [ "a"; "x" ] in
  Alcotest.(check bool) "rigid absent" false
    (Homomorphism.exists_fact_hom ~fixed:fixed2 src ~into)

let test_fact_hom_merging () =
  (* two facts sharing a non-fixed constant must map consistently *)
  let src = facts [ fact "R" [ "u"; "v" ]; fact "S" [ "v"; "w" ] ] in
  let into = facts [ fact "R" [ "1"; "2" ]; fact "S" [ "3"; "4" ] ] in
  Alcotest.(check bool) "inconsistent v" false
    (Homomorphism.exists_fact_hom ~fixed:Term.Sset.empty src ~into);
  let into2 = facts [ fact "R" [ "1"; "2" ]; fact "S" [ "2"; "4" ] ] in
  Alcotest.(check bool) "consistent v" true
    (Homomorphism.exists_fact_hom ~fixed:Term.Sset.empty src ~into:into2)

let test_leak_example () =
  (* the paper's example (Section 4.1): for q = ∃x [AB+BA](x,a), the fact
     A(b,a) is a q-leak because of the minimal support {A(b,d), B(d,a)} *)
  let q = Query_parse.parse "crpq: (AB+BA)(?x,a)" in
  let support = facts [ fact "A" [ "b"; "d" ]; fact "B" [ "d"; "a" ] ] in
  Alcotest.(check bool) "A(b,a) is a leak" true
    (Query.leak_witness q ~canonical:[ support ] (fact "A" [ "b'"; "a" ]));
  Alcotest.(check bool) "A(b,c) is not a leak" false
    (Query.leak_witness q ~canonical:[ support ] (fact "A" [ "b'"; "c'" ]))

let prop_valuation_images_satisfy =
  qcheck ~count:60 "every valuation image satisfies the query"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r
           ~rels:[ ("R", 2); ("S", 1) ]
           ~consts:[ "1"; "2"; "3" ] ~n_endo:5 ~n_exo:0
       in
       let atoms = Cq.atoms (Cq.parse "R(?x,?y), S(?y)") in
       let into = Database.all db in
       let ok = ref true in
       Homomorphism.iter_valuations ~into atoms (fun s ->
           if not (Fact.Set.subset (Homomorphism.image s atoms) into) then ok := false);
       !ok)

let suite =
  [
    Alcotest.test_case "single atom" `Quick test_single_atom;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "constant rigidity" `Quick test_constant_rigidity;
    Alcotest.test_case "repeated variable" `Quick test_repeated_variable;
    Alcotest.test_case "initial binding" `Quick test_initial_binding;
    Alcotest.test_case "image" `Quick test_image;
    Alcotest.test_case "minimal images" `Quick test_minimal_images;
    Alcotest.test_case "fact homomorphisms" `Quick test_fact_homs;
    Alcotest.test_case "fact hom consistency" `Quick test_fact_hom_merging;
    Alcotest.test_case "q-leak example (paper §4.1)" `Quick test_leak_example;
    prop_valuation_images_satisfy;
  ]
