open Test_util

let b = Bigint.of_int
let zp coeffs = Poly.Z.of_coeffs (List.map b coeffs)

let test_construction () =
  check_zpoly "of_coeffs trims" (zp [ 1; 2 ]) (zp [ 1; 2; 0; 0 ]);
  Alcotest.(check int) "degree" 1 (Poly.Z.degree (zp [ 1; 2 ]));
  Alcotest.(check int) "degree zero" (-1) (Poly.Z.degree Poly.Z.zero);
  check_zpoly "monomial" (zp [ 0; 0; 5 ]) (Poly.Z.monomial (b 5) 2);
  check_zpoly "x" (zp [ 0; 1 ]) Poly.Z.x;
  Alcotest.check_raises "negative degree" (Invalid_argument "Poly.monomial: negative degree")
    (fun () -> ignore (Poly.Z.monomial Bigint.one (-1)))

let test_coeff () =
  let p = zp [ 3; 0; 7 ] in
  check_bigint "coeff 0" (b 3) (Poly.Z.coeff p 0);
  check_bigint "coeff 1" Bigint.zero (Poly.Z.coeff p 1);
  check_bigint "coeff 2" (b 7) (Poly.Z.coeff p 2);
  check_bigint "coeff beyond" Bigint.zero (Poly.Z.coeff p 99);
  check_bigint "coeff negative" Bigint.zero (Poly.Z.coeff p (-1))

let test_arithmetic () =
  let p = zp [ 1; 2; 3 ] and q = zp [ 5; -2 ] in
  check_zpoly "add" (zp [ 6; 0; 3 ]) (Poly.Z.add p q);
  check_zpoly "sub" (zp [ -4; 4; 3 ]) (Poly.Z.sub p q);
  check_zpoly "cancellation" Poly.Z.zero (Poly.Z.sub p p);
  check_zpoly "mul" (zp [ 5; 8; 11; -6 ]) (Poly.Z.mul p q);
  check_zpoly "mul by zero" Poly.Z.zero (Poly.Z.mul p Poly.Z.zero);
  check_zpoly "scale" (zp [ 2; 4; 6 ]) (Poly.Z.scale (b 2) p);
  check_zpoly "shift" (zp [ 0; 0; 1; 2; 3 ]) (Poly.Z.shift 2 p);
  check_zpoly "neg" (zp [ -1; -2; -3 ]) (Poly.Z.neg p)

let test_eval () =
  let p = zp [ 1; 2; 3 ] in
  check_bigint "p(0)" (b 1) (Poly.Z.eval p Bigint.zero);
  check_bigint "p(1)" (b 6) (Poly.Z.eval p Bigint.one);
  check_bigint "p(2)" (b 17) (Poly.Z.eval p (b 2));
  check_bigint "total" (b 6) (Poly.Z.total p);
  check_rational "eval rational" (Rational.of_ints 11 4)
    (Poly.Z.eval_rational p Rational.half)

let test_binomial_identity () =
  (* (1+z)^n has binomial coefficients *)
  let n = 12 in
  let one_plus_z = zp [ 1; 1 ] in
  let p = List.fold_left (fun acc _ -> Poly.Z.mul acc one_plus_z) Poly.Z.one (List.init n Fun.id) in
  for k = 0 to n do
    check_bigint (Printf.sprintf "C(%d,%d)" n k) (Bigint.binomial n k) (Poly.Z.coeff p k)
  done;
  check_bigint "total = 2^n" (Bigint.pow (b 2) n) (Poly.Z.total p)

let test_qpoly () =
  let p = Poly.Q.of_coeffs [ Rational.half; Rational.of_int 2 ] in
  Alcotest.(check bool) "eval" true
    (Rational.equal (Poly.Q.eval p Rational.one) (Rational.of_ints 5 2))

let arb_poly =
  QCheck2.Gen.(map (fun l -> zp l) (list_size (int_range 0 8) (int_range (-20) 20)))

let prop_add_comm =
  qcheck "add commutes" (QCheck2.Gen.pair arb_poly arb_poly) (fun (p, q) ->
      Poly.Z.equal (Poly.Z.add p q) (Poly.Z.add q p))

let prop_mul_comm =
  qcheck "mul commutes" (QCheck2.Gen.pair arb_poly arb_poly) (fun (p, q) ->
      Poly.Z.equal (Poly.Z.mul p q) (Poly.Z.mul q p))

let prop_mul_degree =
  qcheck "degree of product" (QCheck2.Gen.pair arb_poly arb_poly) (fun (p, q) ->
      if Poly.Z.is_zero p || Poly.Z.is_zero q then Poly.Z.is_zero (Poly.Z.mul p q)
      else Poly.Z.degree (Poly.Z.mul p q) = Poly.Z.degree p + Poly.Z.degree q)

let prop_eval_hom =
  qcheck "eval is a ring hom" (QCheck2.Gen.triple arb_poly arb_poly (QCheck2.Gen.int_range (-5) 5))
    (fun (p, q, v) ->
       let v = b v in
       Bigint.equal
         (Poly.Z.eval (Poly.Z.mul p q) v)
         (Bigint.mul (Poly.Z.eval p v) (Poly.Z.eval q v))
       && Bigint.equal
         (Poly.Z.eval (Poly.Z.add p q) v)
         (Bigint.add (Poly.Z.eval p v) (Poly.Z.eval q v)))

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "coefficients" `Quick test_coeff;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "binomial identity" `Quick test_binomial_identity;
    Alcotest.test_case "rational polynomials" `Quick test_qpoly;
    prop_add_comm;
    prop_mul_comm;
    prop_mul_degree;
    prop_eval_hom;
  ]
