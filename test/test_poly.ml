open Test_util

let b = Bigint.of_int
let zp coeffs = Poly.Z.of_coeffs (List.map b coeffs)

let test_construction () =
  check_zpoly "of_coeffs trims" (zp [ 1; 2 ]) (zp [ 1; 2; 0; 0 ]);
  Alcotest.(check int) "degree" 1 (Poly.Z.degree (zp [ 1; 2 ]));
  Alcotest.(check int) "degree zero" (-1) (Poly.Z.degree Poly.Z.zero);
  check_zpoly "monomial" (zp [ 0; 0; 5 ]) (Poly.Z.monomial (b 5) 2);
  check_zpoly "x" (zp [ 0; 1 ]) Poly.Z.x;
  Alcotest.check_raises "negative degree" (Invalid_argument "Poly.monomial: negative degree")
    (fun () -> ignore (Poly.Z.monomial Bigint.one (-1)))

let test_coeff () =
  let p = zp [ 3; 0; 7 ] in
  check_bigint "coeff 0" (b 3) (Poly.Z.coeff p 0);
  check_bigint "coeff 1" Bigint.zero (Poly.Z.coeff p 1);
  check_bigint "coeff 2" (b 7) (Poly.Z.coeff p 2);
  check_bigint "coeff beyond" Bigint.zero (Poly.Z.coeff p 99);
  check_bigint "coeff negative" Bigint.zero (Poly.Z.coeff p (-1))

let test_arithmetic () =
  let p = zp [ 1; 2; 3 ] and q = zp [ 5; -2 ] in
  check_zpoly "add" (zp [ 6; 0; 3 ]) (Poly.Z.add p q);
  check_zpoly "sub" (zp [ -4; 4; 3 ]) (Poly.Z.sub p q);
  check_zpoly "cancellation" Poly.Z.zero (Poly.Z.sub p p);
  check_zpoly "mul" (zp [ 5; 8; 11; -6 ]) (Poly.Z.mul p q);
  check_zpoly "mul by zero" Poly.Z.zero (Poly.Z.mul p Poly.Z.zero);
  check_zpoly "scale" (zp [ 2; 4; 6 ]) (Poly.Z.scale (b 2) p);
  check_zpoly "shift" (zp [ 0; 0; 1; 2; 3 ]) (Poly.Z.shift 2 p);
  check_zpoly "neg" (zp [ -1; -2; -3 ]) (Poly.Z.neg p)

let test_eval () =
  let p = zp [ 1; 2; 3 ] in
  check_bigint "p(0)" (b 1) (Poly.Z.eval p Bigint.zero);
  check_bigint "p(1)" (b 6) (Poly.Z.eval p Bigint.one);
  check_bigint "p(2)" (b 17) (Poly.Z.eval p (b 2));
  check_bigint "total" (b 6) (Poly.Z.total p);
  check_rational "eval rational" (Rational.of_ints 11 4)
    (Poly.Z.eval_rational p Rational.half)

let test_binomial_identity () =
  (* (1+z)^n has binomial coefficients *)
  let n = 12 in
  let one_plus_z = zp [ 1; 1 ] in
  let p = List.fold_left (fun acc _ -> Poly.Z.mul acc one_plus_z) Poly.Z.one (List.init n Fun.id) in
  for k = 0 to n do
    check_bigint (Printf.sprintf "C(%d,%d)" n k) (Bigint.binomial n k) (Poly.Z.coeff p k)
  done;
  check_bigint "total = 2^n" (Bigint.pow (b 2) n) (Poly.Z.total p)

let test_qpoly () =
  let p = Poly.Q.of_coeffs [ Rational.half; Rational.of_int 2 ] in
  Alcotest.(check bool) "eval" true
    (Rational.equal (Poly.Q.eval p Rational.one) (Rational.of_ints 5 2))

let arb_poly =
  QCheck2.Gen.(map (fun l -> zp l) (list_size (int_range 0 8) (int_range (-20) 20)))

let prop_add_comm =
  qcheck "add commutes" (QCheck2.Gen.pair arb_poly arb_poly) (fun (p, q) ->
      Poly.Z.equal (Poly.Z.add p q) (Poly.Z.add q p))

let prop_mul_comm =
  qcheck "mul commutes" (QCheck2.Gen.pair arb_poly arb_poly) (fun (p, q) ->
      Poly.Z.equal (Poly.Z.mul p q) (Poly.Z.mul q p))

let prop_mul_degree =
  qcheck "degree of product" (QCheck2.Gen.pair arb_poly arb_poly) (fun (p, q) ->
      if Poly.Z.is_zero p || Poly.Z.is_zero q then Poly.Z.is_zero (Poly.Z.mul p q)
      else Poly.Z.degree (Poly.Z.mul p q) = Poly.Z.degree p + Poly.Z.degree q)

let prop_eval_hom =
  qcheck "eval is a ring hom" (QCheck2.Gen.triple arb_poly arb_poly (QCheck2.Gen.int_range (-5) 5))
    (fun (p, q, v) ->
       let v = b v in
       Bigint.equal
         (Poly.Z.eval (Poly.Z.mul p q) v)
         (Bigint.mul (Poly.Z.eval p v) (Poly.Z.eval q v))
       && Bigint.equal
         (Poly.Z.eval (Poly.Z.add p q) v)
         (Bigint.add (Poly.Z.eval p v) (Poly.Z.eval q v)))

(* ------------------------------------------------------------------ *)
(* Flat-array representation: differential battery                     *)
(* ------------------------------------------------------------------ *)

(* Coefficients on both Bigint tiers: small, boundary-straddling, and
   well past the promotion threshold. *)
let gen_coeff =
  QCheck2.Gen.(
    oneof
      [ map b (int_range (-50) 50);
        map (fun k -> Bigint.add (b max_int) (b k)) (int_range (-50) 50);
        map (fun k -> Bigint.mul_int (Bigint.pow (b 10) 25) k) (int_range (-9) 9) ])

let gen_coeffs = QCheck2.Gen.(list_size (int_range 0 10) gen_coeff)

(* The flat single-pass constructor against the monomial-fold reference,
   over mixed-tier coefficient lists (1000 cases). *)
let prop_of_coeffs_reference =
  qcheck ~count:1000 "of_coeffs = of_list_reference on mixed-tier coeffs"
    gen_coeffs
    (fun cs ->
       Poly.Z.equal (Poly.Z.of_coeffs cs) (Poly.Z.For_tests.of_list_reference cs))

(* Random op sequences: the flat kernels against results recomputed from
   reference-built operands; coefficients cross the Bigint promotion
   boundary throughout. *)
let prop_poly_differential =
  qcheck ~count:1000 "flat kernels = reference-built operands over op sequences"
    QCheck2.Gen.(
      pair gen_coeffs
        (list_size (int_range 1 6)
           (pair (int_range 0 4) (pair gen_coeffs (pair gen_coeff (int_range 0 4))))))
    (fun (start, ops) ->
       let apply pbuild p (tag, (cs, (c, k))) =
         let q = pbuild cs in
         match tag with
         | 0 -> Poly.Z.add p q
         | 1 -> Poly.Z.sub p q
         | 2 -> Poly.Z.mul p q
         | 3 -> Poly.Z.scale c p
         | _ -> Poly.Z.shift k p
       in
       let adaptive = List.fold_left (apply Poly.Z.of_coeffs) (Poly.Z.of_coeffs start) ops in
       let reference =
         List.fold_left
           (apply Poly.Z.For_tests.of_list_reference)
           (Poly.Z.For_tests.of_list_reference start) ops
       in
       Poly.Z.equal adaptive reference)

(* The in-place accumulator against the allocating composition
   add ∘ scale ∘ shift, including interleaved snapshots and reuse after
   acc_clear. *)
let prop_acc_differential =
  qcheck ~count:1000 "acc_add_scaled = add (scale c (shift k p))"
    QCheck2.Gen.(
      list_size (int_range 0 8) (pair gen_coeffs (pair gen_coeff (int_range 0 5))))
    (fun steps ->
       let acc = Poly.Z.acc_create 4 in
       let expected = ref Poly.Z.zero in
       let ok = ref true in
       List.iter
         (fun (cs, (c, k)) ->
            let p = Poly.Z.of_coeffs cs in
            Poly.Z.acc_add_scaled acc c k p;
            expected := Poly.Z.add !expected (Poly.Z.scale c (Poly.Z.shift k p));
            if not (Poly.Z.equal (Poly.Z.acc_total acc) !expected) then ok := false)
         steps;
       (* a cleared accumulator is reusable from zero *)
       Poly.Z.acc_clear acc;
       List.iter (fun (cs, _) -> Poly.Z.acc_add acc (Poly.Z.of_coeffs cs)) steps;
       !ok
       && Poly.Z.equal (Poly.Z.acc_total acc)
            (Poly.Z.sum (List.map (fun (cs, _) -> Poly.Z.of_coeffs cs) steps)))

let prop_sum_differential =
  qcheck ~count:300 "sum = fold of add"
    QCheck2.Gen.(list_size (int_range 0 10) gen_coeffs)
    (fun css ->
       let ps = List.map Poly.Z.of_coeffs css in
       Poly.Z.equal (Poly.Z.sum ps) (List.fold_left Poly.Z.add Poly.Z.zero ps))

let test_acc_units () =
  let acc = Poly.Z.acc_create 1 in
  check_zpoly "fresh acc is zero" Poly.Z.zero (Poly.Z.acc_total acc);
  Poly.Z.acc_add_scaled acc (b 3) 2 (zp [ 1; 1 ]);
  check_zpoly "3z^2(1+z)" (zp [ 0; 0; 3; 3 ]) (Poly.Z.acc_total acc);
  Poly.Z.acc_add_scaled acc (b (-3)) 2 (zp [ 1; 1 ]);
  check_zpoly "cancellation back to zero" Poly.Z.zero (Poly.Z.acc_total acc);
  Poly.Z.acc_add acc (zp [ 5 ]);
  Poly.Z.acc_add_scaled acc Bigint.zero 0 (zp [ 7; 7 ]);
  check_zpoly "zero scale is a no-op" (zp [ 5 ]) (Poly.Z.acc_total acc);
  Alcotest.check_raises "negative shift"
    (Invalid_argument "Poly.acc_add_scaled: negative shift") (fun () ->
        Poly.Z.acc_add_scaled acc Bigint.one (-1) (zp [ 1 ]))

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "coefficients" `Quick test_coeff;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "binomial identity" `Quick test_binomial_identity;
    Alcotest.test_case "rational polynomials" `Quick test_qpoly;
    prop_add_comm;
    prop_mul_comm;
    prop_mul_degree;
    prop_eval_hom;
    Alcotest.test_case "accumulator units" `Quick test_acc_units;
    prop_of_coeffs_reference;
    prop_poly_differential;
    prop_acc_differential;
    prop_sum_differential;
  ]
