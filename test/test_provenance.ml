open Test_util

(* Provenance semirings and annotated evaluation. *)

let q = Cq.parse "R(?x), S(?x,?y)"

let db_facts =
  facts
    [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "S" [ "1"; "3" ];
      fact "R" [ "4" ]; fact "S" [ "4"; "2" ] ]

let test_bool_specialization () =
  let sat = Annotate.cq (module Semiring.Bool) ~annot:(fun _ -> true) q db_facts in
  Alcotest.(check bool) "satisfied" true sat;
  Alcotest.(check bool) "eval agrees" (Cq.eval q db_facts) sat;
  Alcotest.(check bool) "empty db" false
    (Annotate.cq (module Semiring.Bool) ~annot:(fun _ -> true) q Fact.Set.empty)

let test_hom_count () =
  (* valuations: (1,2), (1,3), (4,2) *)
  check_bigint "3 homomorphisms" (Bigint.of_int 3) (Annotate.hom_count q db_facts);
  check_bigint "none" Bigint.zero (Annotate.hom_count q Fact.Set.empty)

let test_min_cost () =
  let cost f =
    match Fact.to_string f with
    | "R(1)" -> 5
    | "R(4)" -> 1
    | "S(4,2)" -> 1
    | _ -> 10
  in
  Alcotest.(check (option int)) "cheapest derivation" (Some 2)
    (Annotate.min_cost ~cost q db_facts);
  Alcotest.(check (option int)) "unsatisfied" None
    (Annotate.min_cost ~cost q Fact.Set.empty)

let test_provenance_polynomial () =
  let p = Annotate.provenance_polynomial q db_facts in
  let monos = Semiring.Nx.monomials p in
  Alcotest.(check int) "three monomials" 3 (List.length monos);
  List.iter
    (fun (c, factors) ->
       check_bigint "coefficient 1" Bigint.one c;
       Alcotest.(check int) "two facts per derivation" 2 (List.length factors);
       List.iter (fun (_, e) -> Alcotest.(check int) "exponent 1" 1 e) factors)
    monos

let test_nx_semiring_laws () =
  let x = Semiring.Nx.var (fact "R" [ "1" ]) and y = Semiring.Nx.var (fact "S" [ "1"; "2" ]) in
  let open Semiring.Nx in
  Alcotest.(check bool) "commutativity +" true (equal (plus x y) (plus y x));
  Alcotest.(check bool) "commutativity ×" true (equal (times x y) (times y x));
  Alcotest.(check bool) "distributivity" true
    (equal (times x (plus y one)) (plus (times x y) x));
  Alcotest.(check bool) "absorbing zero" true (equal (times x zero) zero);
  Alcotest.(check bool) "x + x = 2x" true
    (equal (plus x x) (times (const Bigint.two) x));
  (* (x+y)^2 = x^2 + 2xy + y^2 *)
  let sq = times (plus x y) (plus x y) in
  let expected =
    plus (times x x) (plus (times (const Bigint.two) (times x y)) (times y y))
  in
  Alcotest.(check bool) "binomial square" true (equal sq expected)

let test_specialize_universality () =
  (* specializing ℕ[X] at the counting semiring with all-ones valuation
     must equal the direct hom count *)
  let p = Annotate.provenance_polynomial q db_facts in
  check_bigint "universality (counting)"
    (Annotate.hom_count q db_facts)
    (Semiring.Nx.specialize (module Semiring.Counting) (fun _ -> Bigint.one) p);
  (* and at Bool with presence valuation for a sub-database *)
  let sub = facts [ fact "R" [ "4" ]; fact "S" [ "4"; "2" ] ] in
  Alcotest.(check bool) "universality (bool)" (Cq.eval q sub)
    (Semiring.Nx.specialize (module Semiring.Bool) (fun f -> Fact.Set.mem f sub) p)

let test_lineage_equivalence () =
  (* the Boolean image of provenance is logically equivalent to the
     support-based lineage: same counting polynomial *)
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "R" [ "4" ]; fact "S" [ "4"; "2" ] ]
  in
  let via_prov = Annotate.lineage_of_provenance q db in
  let via_supports = Lineage.lineage (Query.Cq q) db in
  let u = Database.endo_list db in
  check_zpoly "same counts"
    (Compile.size_polynomial ~universe:u via_supports)
    (Compile.size_polynomial ~universe:u via_prov)

let prop_lineage_equivalence_random =
  qcheck ~count:40 "provenance lineage ≡ support lineage"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2) ] ~consts:[ "1"; "2"; "3" ]
           ~n_endo:(1 + Workload.int r 5) ~n_exo:(Workload.int r 3)
       in
       let u = Database.endo_list db in
       Poly.Z.equal
         (Compile.size_polynomial ~universe:u (Annotate.lineage_of_provenance q db))
         (Compile.size_polynomial ~universe:u (Lineage.lineage (Query.Cq q) db)))

let test_tropical_laws () =
  let open Semiring.Tropical in
  Alcotest.(check bool) "min identity" true (equal (plus zero (of_int 3)) (of_int 3));
  Alcotest.(check bool) "plus identity" true (equal (times one (of_int 3)) (of_int 3));
  Alcotest.(check bool) "absorption" true (equal (times zero (of_int 3)) zero);
  Alcotest.(check (option int)) "finite" (Some 7) (finite (of_int 7));
  Alcotest.(check (option int)) "infinite" None (finite zero)

let test_ucq_annotation () =
  let u = Ucq.parse "R(?x) | S(?x,?y)" in
  (* hom counts add across disjuncts: 2 R-facts + 3 S-facts *)
  check_bigint "union counts"
    (Bigint.of_int 5)
    (Annotate.ucq (module Semiring.Counting) ~annot:(fun _ -> Bigint.one) u db_facts)

let suite =
  [
    Alcotest.test_case "boolean specialization" `Quick test_bool_specialization;
    Alcotest.test_case "homomorphism counting" `Quick test_hom_count;
    Alcotest.test_case "tropical min-cost" `Quick test_min_cost;
    Alcotest.test_case "provenance polynomial" `Quick test_provenance_polynomial;
    Alcotest.test_case "ℕ[X] semiring laws" `Quick test_nx_semiring_laws;
    Alcotest.test_case "specialization universality" `Quick test_specialize_universality;
    Alcotest.test_case "lineage equivalence" `Quick test_lineage_equivalence;
    Alcotest.test_case "tropical laws" `Quick test_tropical_laws;
    Alcotest.test_case "UCQ annotation" `Quick test_ucq_annotation;
    prop_lineage_equivalence_random;
  ]
