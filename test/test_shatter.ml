open Test_util

(* Example E.1 of the paper: q = R(x,y) ∧ S(a,x) ∧ S(x,a) ∧ T(x,z) is
   variable-connected, but its shattering contains the disconnected
   disjunct R_{a,*}(y) ∧ S_{a,a}() ∧ T_{a,*}(z)  (where x ↦ a). *)
let e1 = Cq.parse "R(?x,?y), S(a,?x), S(?x,a), T(?x,?z)"

let test_example_e1 () =
  Alcotest.(check bool) "E.1 variable-connected" true (Cq.is_variable_connected e1);
  let disjuncts = Shatter.shatter e1 ~c:(Term.Sset.singleton "a") in
  (* x,y,z each choose {free, a}: 8 disjuncts *)
  Alcotest.(check int) "2^3 disjuncts" 8 (List.length disjuncts);
  let x_to_a =
    List.filter
      (fun d ->
         Term.Smap.find_opt "x" d.Shatter.assignment = Some "a"
         && Term.Smap.cardinal d.Shatter.assignment = 1)
      disjuncts
  in
  match x_to_a with
  | [ d ] ->
    Alcotest.(check bool) "x↦a disjunct disconnected" false
      (Shatter.is_variable_connected d);
    (* it mentions the specialized relations of the paper *)
    let rels = List.map Shatter.satom_rel d.Shatter.atoms in
    Alcotest.(check bool) "R@a,*" true (List.mem "R@a,*" rels);
    Alcotest.(check bool) "S@a,a" true (List.mem "S@a,a" rels);
    Alcotest.(check bool) "T@a,*" true (List.mem "T@a,*" rels)
  | _ -> Alcotest.fail "expected exactly one x↦a disjunct"

let test_identity_disjunct_connected () =
  let disjuncts = Shatter.shatter e1 ~c:(Term.Sset.singleton "a") in
  let empty_assignment =
    List.filter (fun d -> Term.Smap.is_empty d.Shatter.assignment) disjuncts
  in
  match empty_assignment with
  | [ d ] ->
    Alcotest.(check bool) "all-free disjunct connected" true
      (Shatter.is_variable_connected d)
  | _ -> Alcotest.fail "expected one empty-assignment disjunct"

let test_semantic_equivalence_concrete () =
  let c = Term.Sset.singleton "a" in
  let disjuncts = Shatter.shatter e1 ~c in
  let check db_facts =
    let original = Cq.eval e1 db_facts in
    let shattered = Shatter.eval disjuncts (Shatter.shatter_database db_facts ~c) in
    Alcotest.(check bool) "agree" original shattered
  in
  check (facts [ fact "R" [ "1"; "2" ]; fact "S" [ "a"; "1" ]; fact "S" [ "1"; "a" ];
                 fact "T" [ "1"; "3" ] ]);
  (* satisfied via x = a *)
  check (facts [ fact "R" [ "a"; "2" ]; fact "S" [ "a"; "a" ]; fact "T" [ "a"; "3" ] ]);
  (* unsatisfied: missing the S(x,a) leg *)
  check (facts [ fact "R" [ "1"; "2" ]; fact "S" [ "a"; "1" ]; fact "T" [ "1"; "3" ] ]);
  check Fact.Set.empty

let test_guard () =
  Alcotest.check_raises "C must contain query constants"
    (Invalid_argument "Shatter.shatter: C must contain the query constants") (fun () ->
        ignore (Shatter.shatter e1 ~c:Term.Sset.empty))

let test_shatter_database () =
  let c = Term.Sset.singleton "a" in
  let fs = facts [ fact "S" [ "a"; "1" ]; fact "S" [ "a"; "a" ]; fact "S" [ "1"; "2" ] ] in
  let sh = Shatter.shatter_database fs ~c in
  Alcotest.(check int) "cardinality preserved" 3 (Fact.Set.cardinal sh);
  Alcotest.(check bool) "pinned fact" true
    (Fact.Set.mem (fact "S@a,*" [ "1" ]) sh);
  Alcotest.(check bool) "nullary gets $unit" true
    (Fact.Set.mem (fact "S@a,a" [ "$unit" ]) sh);
  Alcotest.(check bool) "free fact" true (Fact.Set.mem (fact "S@*,*" [ "1"; "2" ]) sh)

(* random equivalence: original query over D ≡ shattered union over
   shattered D *)
let prop_shatter_equivalence =
  qcheck ~count:60 "shattering preserves satisfaction"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r
           ~rels:[ ("R", 2); ("S", 2); ("T", 2) ]
           ~consts:[ "a"; "1"; "2" ] ~n_endo:(2 + Workload.int r 5) ~n_exo:0
       in
       let fs = Database.all db in
       let c = Term.Sset.singleton "a" in
       let disjuncts = Shatter.shatter e1 ~c in
       Cq.eval e1 fs = Shatter.eval disjuncts (Shatter.shatter_database fs ~c))

let suite =
  [
    Alcotest.test_case "Example E.1" `Quick test_example_e1;
    Alcotest.test_case "identity disjunct" `Quick test_identity_disjunct_connected;
    Alcotest.test_case "semantic equivalence" `Quick test_semantic_equivalence_concrete;
    Alcotest.test_case "guards" `Quick test_guard;
    Alcotest.test_case "database shattering" `Quick test_shatter_database;
    prop_shatter_equivalence;
  ]
