(* Shared qcheck generators and enumerators for the test suite.

   Every property test that needs a random partitioned database draws it
   from here, keyed by an integer seed from [seed_gen]: qcheck shrinks the
   seed, and the deterministic [Workload] rng turns the seed into a
   reproducible instance.  The generators mirror the historical per-file
   ones exactly (same rng consumption order), so moving a test here does
   not change the instances it sees. *)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* Canonical benchmark instances, sourced from the [Workload.Family]
   registry rather than private copies: seed 0 is pinned bit-compatible
   with the historical constructors ([Workload.star_join],
   complete [Workload.rst_gadget]) by test_workload.ml, so every qcheck
   case that draws these sees exactly the instances it always did. *)
let star ~spokes = (Workload.generate ~family:"star" ~seed:0 ~size:spokes).Workload.db

let bipartite ~rows =
  (Workload.generate ~family:"bipartite" ~seed:0 ~size:rows).Workload.db

(* A small relational schema exercised by most properties: unary R and T,
   binary S — enough for q_RST and its variants. *)
let default_rels = [ ("R", 1); ("S", 2); ("T", 1) ]
let default_consts = [ "1"; "2"; "3" ]

let random_db ?(rels = default_rels) ?(consts = default_consts)
    ?(max_endo = 5) ?(max_exo = 2) seed =
  let r = Workload.rng seed in
  Workload.random_database r ~rels ~consts
    ~n_endo:(1 + Workload.int r max_endo)
    ~n_exo:(Workload.int r (max_exo + 1))

(* Random labelled graph over a fixed node pool, for the rpq/crpq tests. *)
let random_graph_db ?(labels = [ "A"; "B" ]) ?(nodes = [ "s"; "1"; "2"; "t" ])
    ?(max_endo = 5) ?(max_exo = 2) seed =
  let r = Workload.rng seed in
  Workload.random_graph r ~labels ~nodes
    ~n_endo:(1 + Workload.int r max_endo)
    ~n_exo:(Workload.int r (max_exo + 1))

(* A corpus of queries of different classes over the default schema, for
   differential properties that should hold across the whole language. *)
let query_corpus =
  [
    ("q_RST", Query_parse.parse "R(?x), S(?x,?y), T(?y)");
    ("hierarchical", Query_parse.parse "R(?x), S(?x,?y)");
    ("union", Query_parse.parse "ucq: R(?x) | S(?x,?y), T(?y)");
    ("negation", Query_parse.parse "cqneg: R(?x), S(?x,?y), !T(?y)");
    ("constants", Query_parse.parse "R(1), S(1,?y), T(?y)");
  ]

(* Graph-shaped queries need graph-shaped databases; kept separate. *)
let graph_query_corpus =
  [
    ("rpq", Query_parse.parse "rpq: (AB)(s,t)");
    ("rpq star", Query_parse.parse "rpq: (A*)(s,t)");
  ]

let random_query r = snd (Workload.pick r query_corpus)

(* A (query, database) pair drawn from the corpus: the first rng draw
   picks the query so the database consumption stays seed-deterministic. *)
let random_case seed =
  let r = Workload.rng seed in
  let q = random_query r in
  let db =
    Workload.random_database r ~rels:default_rels ~consts:default_consts
      ~n_endo:(1 + Workload.int r 5)
      ~n_exo:(Workload.int r 3)
  in
  (q, db)

let random_graph_case seed =
  let r = Workload.rng seed in
  let q = snd (Workload.pick r graph_query_corpus) in
  let db =
    Workload.random_graph r ~labels:[ "A"; "B" ] ~nodes:[ "s"; "1"; "2"; "t" ]
      ~n_endo:(1 + Workload.int r 5)
      ~n_exo:(Workload.int r 3)
  in
  (q, db)

(* Enumerate EVERY partitioned database over a fact universe: each fact is
   absent, endogenous, or exogenous — 3^|universe| databases. *)
let iter_databases facts yield =
  let arr = Array.of_list facts in
  let n = Array.length arr in
  let rec go i endo exo =
    if i = n then yield (Database.of_sets ~endo ~exo)
    else begin
      go (i + 1) endo exo;
      go (i + 1) (Fact.Set.add arr.(i) endo) exo;
      go (i + 1) endo (Fact.Set.add arr.(i) exo)
    end
  in
  go 0 Fact.Set.empty Fact.Set.empty
