open Test_util

(* a 3-player weighted majority game: v(S) = 1 iff S contains player 0 and
   at least one other *)
let majority =
  Game.make ~n:3 ~wealth:(fun mask ->
      if mask land 1 <> 0 && mask land 6 <> 0 then Rational.one else Rational.zero)

let test_known_shapley () =
  (* classic apex values: Sh(0) = 2/3, Sh(1) = Sh(2) = 1/6 *)
  check_rational "apex player" (Rational.of_ints 2 3) (Game.shapley majority 0);
  check_rational "minor player 1" (Rational.of_ints 1 6) (Game.shapley majority 1);
  check_rational "minor player 2" (Rational.of_ints 1 6) (Game.shapley majority 2)

let test_permutation_agreement () =
  for p = 0 to 2 do
    check_rational
      (Printf.sprintf "player %d" p)
      (Game.shapley_permutations majority p)
      (Game.shapley majority p)
  done

let test_axioms () =
  check_rational "efficiency" Rational.zero (Game.efficiency_defect majority);
  (* null player: a game ignoring player 2 *)
  let g =
    Game.make ~n:3 ~wealth:(fun mask -> if mask land 1 <> 0 then Rational.one else Rational.zero)
  in
  check_rational "null player gets zero" Rational.zero (Game.shapley g 2);
  check_rational "dictator gets all" Rational.one (Game.shapley g 0);
  (* symmetry: interchangeable players get the same value *)
  let sym =
    Game.make ~n:3 ~wealth:(fun mask ->
        if mask land 3 <> 0 then Rational.one else Rational.zero)
  in
  check_rational "symmetric" (Game.shapley sym 0) (Game.shapley sym 1)

let test_monotone_binary () =
  Alcotest.(check bool) "majority monotone" true (Game.is_monotone majority);
  Alcotest.(check bool) "majority binary" true (Game.is_binary majority);
  let non_mono =
    Game.make ~n:2 ~wealth:(fun mask -> if mask = 1 then Rational.one else Rational.zero)
  in
  Alcotest.(check bool) "non-monotone detected" false (Game.is_monotone non_mono);
  let non_bin = Game.make ~n:1 ~wealth:(fun mask -> Rational.of_int (2 * mask)) in
  Alcotest.(check bool) "non-binary detected" false (Game.is_binary non_bin)

let test_query_game () =
  let q = Query_parse.parse "R(?x), S(?x)" in
  let db =
    Database.make ~endo:[ fact "R" [ "1" ]; fact "S" [ "1" ] ] ~exo:[]
  in
  let game, players = Game.of_query q db in
  Alcotest.(check int) "two players" 2 (Game.n game);
  Alcotest.(check int) "player array" 2 (Array.length players);
  (* both facts needed: each gets 1/2 *)
  check_rational "split" Rational.half (Game.shapley game 0);
  check_rational "split" Rational.half (Game.shapley game 1);
  Alcotest.(check bool) "monotone" true (Game.is_monotone game);
  Alcotest.(check bool) "binary" true (Game.is_binary game)

let test_query_game_exo_satisfied () =
  (* when Dₓ ⊨ q, the wealth is identically zero *)
  let q = Query_parse.parse "R(?x)" in
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "R" [ "2" ] ] in
  let game, _ = Game.of_query q db in
  check_rational "zero value" Rational.zero (Game.shapley game 0)

let test_guards () =
  Alcotest.check_raises "bad player count" (Invalid_argument "Game.make: player count out of range")
    (fun () -> ignore (Game.make ~n:(-1) ~wealth:(fun _ -> Rational.zero)));
  Alcotest.check_raises "no such player" (Invalid_argument "Game.shapley: no such player")
    (fun () -> ignore (Game.shapley majority 5))

(* random monotone binary games from random queries: Lemma 6.3 property *)
let prop_lemma_6_3 =
  qcheck ~count:40 "Lemma 6.3: singleton supports take the max"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2) ]
           ~consts:[ "1"; "2" ] ~n_endo:(2 + Workload.int r 3) ~n_exo:(Workload.int r 2)
       in
       let q = Query_parse.parse "ucq: R(?x) | S(?x,?y)" in
       Max_svc.singleton_support_is_max q db)

let prop_efficiency_random =
  qcheck ~count:30 "efficiency axiom on query games" QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
           ~consts:[ "1"; "2" ] ~n_endo:(1 + Workload.int r 4) ~n_exo:(Workload.int r 2)
       in
       let game, _ = Game.of_query (Query_parse.parse "R(?x), S(?x,?y), T(?y)") db in
       Rational.is_zero (Game.efficiency_defect game))

let prop_subset_vs_permutation =
  qcheck ~count:20 "Eq. 1 = Eq. 2 on random small games"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 4))
    (fun (seed, n) ->
       let r = Workload.rng seed in
       (* random monotone wealth: union of random minimal winning coalitions *)
       let winners = List.init (1 + Workload.int r 2) (fun _ -> 1 + Workload.int r ((1 lsl n) - 1)) in
       let wealth mask =
         if List.exists (fun w -> mask land w = w) winners then Rational.one
         else Rational.zero
       in
       let g = Game.make ~n ~wealth in
       List.for_all
         (fun p -> Rational.equal (Game.shapley g p) (Game.shapley_permutations g p))
         (List.init n Fun.id))

let test_banzhaf () =
  (* apex game: Banzhaf(0) = 3/4, Banzhaf(1) = Banzhaf(2) = 1/4 *)
  check_rational "apex" (Rational.of_ints 3 4) (Game.banzhaf majority 0);
  check_rational "minor" (Rational.of_ints 1 4) (Game.banzhaf majority 1);
  check_rational "minor" (Rational.of_ints 1 4) (Game.banzhaf majority 2);
  Alcotest.check_raises "bad player" (Invalid_argument "Game.banzhaf: no such player")
    (fun () -> ignore (Game.banzhaf majority 7))

let test_sampling () =
  (* with all n! = 6 permutations equally likely, enough samples land close
     to the exact value; use a crude tolerance *)
  let exact = Game.shapley majority 0 in
  let approx = Game.shapley_sampled majority 0 ~seed:42 ~samples:3000 in
  let err = Rational.to_float (Rational.abs (Rational.sub exact approx)) in
  Alcotest.(check bool) (Printf.sprintf "error %.3f < 0.05" err) true (err < 0.05);
  (* determinism *)
  check_rational "same seed, same estimate" approx
    (Game.shapley_sampled majority 0 ~seed:42 ~samples:3000);
  Alcotest.check_raises "bad samples"
    (Invalid_argument "Game.shapley_sampled: need a positive sample count") (fun () ->
        ignore (Game.shapley_sampled majority 0 ~seed:1 ~samples:0))

let suite =
  [
    Alcotest.test_case "known Shapley values" `Quick test_known_shapley;
    Alcotest.test_case "Banzhaf values" `Quick test_banzhaf;
    Alcotest.test_case "Monte-Carlo sampling" `Quick test_sampling;
    Alcotest.test_case "Eq.1 = Eq.2" `Quick test_permutation_agreement;
    Alcotest.test_case "axioms" `Quick test_axioms;
    Alcotest.test_case "monotone/binary predicates" `Quick test_monotone_binary;
    Alcotest.test_case "query games" `Quick test_query_game;
    Alcotest.test_case "exo-satisfied game" `Quick test_query_game_exo_satisfied;
    Alcotest.test_case "guards" `Quick test_guards;
    prop_lemma_6_3;
    prop_efficiency_random;
    prop_subset_vs_permutation;
  ]
