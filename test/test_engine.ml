(* Differential property suite for the batched memoizing engine.

   The engine must be observationally equivalent to the per-fact Claim A.1
   path ([Svc.svc_all_naive]) and to raw Eq. 2 enumeration
   ([Svc.svc_brute]) on every query class, and the classic Shapley axioms
   must hold of its output.  On top of the differentials, the
   instrumentation contract is pinned: one lineage compilation per
   (query, database), n+1 conditioned counts per [svc_all], and a bounded
   cache that drops rather than lies. *)

open Test_util

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let values_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2
       (fun (f1, x1) (f2, x2) -> Fact.equal f1 f2 && Rational.equal x1 x2)
       v1 v2

(* engine ≡ naive per-fact path ≡ brute force, across the query corpus *)
let prop_engine_vs_naive =
  qcheck ~count:300 "engine svc_all = naive = brute" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let e = Engine.create q db in
       let batched = Engine.svc_all e in
       values_equal batched (Svc.svc_all_naive q db)
       && List.for_all
            (fun (f, v) -> Rational.equal v (Svc.svc_brute q db f))
            batched)

let prop_engine_vs_naive_graph =
  qcheck ~count:100 "engine on rpq graph instances" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_graph_case seed in
       let e = Engine.create q db in
       values_equal (Engine.svc_all e) (Svc.svc_all_naive q db))

(* efficiency: the values sum to q(Dn ∪ Dx) − q(Dx) ∈ {0, 1} *)
let prop_efficiency =
  qcheck ~count:100 "efficiency axiom" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let e = Engine.create q db in
       let total =
         List.fold_left
           (fun acc (_, v) -> Rational.add acc v)
           Rational.zero (Engine.svc_all e)
       in
       let as01 b = if b then Rational.one else Rational.zero in
       let full = as01 (Query.eval q (Database.all db)) in
       let empty = as01 (Query.eval q (Database.exo db)) in
       Rational.equal total (Rational.sub full empty))

let prop_banzhaf =
  qcheck ~count:50 "engine banzhaf = per-fact banzhaf" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let e = Engine.create q db in
       values_equal (Engine.banzhaf_all e)
         (List.map (fun f -> (f, Svc.banzhaf q db f)) (Database.endo_list db)))

(* a bounded cache changes counters, never answers *)
let prop_bounded_cache =
  qcheck ~count:50 "tiny cache, same values" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let unbounded = Engine.create q db in
       let bounded = Engine.create ~cache_capacity:2 q db in
       let reference = Engine.svc_all unbounded in
       let squeezed = Engine.svc_all bounded in
       let s = Engine.stats bounded in
       values_equal reference squeezed
       && s.Stats.cache_size <= 2
       && s.Stats.cache_capacity = 2)

(* symmetry: the spokes of a star join are interchangeable, so they all
   get the same Shapley value *)
let test_symmetry () =
  let db = Gen.star ~spokes:6 in
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let e = Engine.create q db in
  let spoke_values =
    List.filter_map
      (fun (f, v) -> if Fact.rel f = "S" then Some v else None)
      (Engine.svc_all e)
  in
  (match spoke_values with
   | [] -> Alcotest.fail "no spokes"
   | v :: rest ->
     List.iteri
       (fun i v' -> check_rational (Printf.sprintf "spoke %d" (i + 1)) v v')
       rest)

(* null player: a fact whose relation the query never mentions *)
let test_null_player () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ];
              fact "Z" [ "9" ] ]
      ~exo:[]
  in
  let e = Engine.create qrst db in
  check_rational "null player value" Rational.zero
    (Engine.svc e (fact "Z" [ "9" ]))

(* the whole point: exactly one compilation per (query, database), and
   n+1 conditioned counts for a full svc_all.  Backend pinned: the
   cost-based `Auto would (correctly) pick the circuit for this
   instance, and this test is about the conditioning path's contract. *)
let test_single_compilation () =
  let db = Gen.star ~spokes:8 in
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let e = Engine.create ~backend:`Conditioning q db in
  ignore (Engine.svc_all e);
  let s = Engine.stats e in
  let n = Database.size_endo db in
  Alcotest.(check int) "players" n s.Stats.players;
  Alcotest.(check int) "one compilation" 1 s.Stats.compilations;
  Alcotest.(check int) "n+1 conditioned counts" (n + 1) s.Stats.conditionings;
  Alcotest.(check bool) "cache was useful" true (s.Stats.cache_misses > 0);
  Alcotest.(check int) "nothing dropped" 0 s.Stats.cache_drops;
  (* a second full pass recompiles nothing and re-counts nothing new *)
  ignore (Engine.svc_all e);
  let s2 = Engine.stats e in
  Alcotest.(check int) "still one compilation" 1 s2.Stats.compilations;
  Alcotest.(check int) "no new misses" s.Stats.cache_misses s2.Stats.cache_misses

(* backend pinned to conditioning: the memo-cache bound under test only
   bites on the conditioning path *)
let test_bounded_cache_drops () =
  let db = Gen.bipartite ~rows:3 in
  let bounded =
    Engine.create ~backend:`Conditioning ~cache_capacity:4 qrst db
  in
  let unbounded = Engine.create ~backend:`Conditioning qrst db in
  Alcotest.(check bool) "same values" true
    (values_equal (Engine.svc_all bounded) (Engine.svc_all unbounded));
  let s = Engine.stats bounded in
  Alcotest.(check bool) "drops happened" true (s.Stats.cache_drops > 0);
  Alcotest.(check bool) "size bounded" true (s.Stats.cache_size <= 4)

(* the shared memo is reusable across independent counts: the second
   evaluation of the same formula is a single top-level hit *)
let test_memo_reuse () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ];
              fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "T" [ "3" ] ]
  in
  let phi = Lineage.lineage qrst db in
  let universe = Database.endo_list db in
  let memo = Compile.Memo.create () in
  let p1 = Compile.size_polynomial_with ~memo ~universe phi in
  let misses = Compile.Memo.misses memo in
  let hits = Compile.Memo.hits memo in
  let p2 = Compile.size_polynomial_with ~memo ~universe phi in
  check_zpoly "same polynomial" p1 p2;
  Alcotest.(check int) "no new misses" misses (Compile.Memo.misses memo);
  Alcotest.(check bool) "pure hit" true (Compile.Memo.hits memo > hits)

let test_engine_guards () =
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "T" [ "2" ] ] in
  let e = Engine.create qrst db in
  Alcotest.check_raises "not endogenous"
    (Invalid_argument "Engine.svc: fact is not endogenous") (fun () ->
        ignore (Engine.svc e (fact "T" [ "2" ])));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Compile.Memo.create: negative capacity") (fun () ->
        ignore (Engine.create ~cache_capacity:(-1) qrst db))

(* the engine's fgmc polynomial is the plain model-counting one *)
let test_fgmc_polynomial () =
  let db = Gen.random_db 3 in
  let e = Engine.create qrst db in
  check_zpoly "fgmc via engine"
    (Model_counting.fgmc_polynomial qrst db)
    (Engine.fgmc_polynomial e)

(* Workload evaluation rides through the engine *)
let test_workload_eval () =
  let w =
    Workload.make ~name:"engine-test"
      ~cases:
        [ Workload.case ~name:"star" ~query_src:"R(?x), S(?x,?y)"
            ~db:(Gen.star ~spokes:3) ]
  in
  match Workload.eval w with
  | [ r ] ->
    Alcotest.(check int) "one compilation" 1 r.Workload.stats.Stats.compilations;
    let total =
      List.fold_left
        (fun acc (_, v) -> Rational.add acc v)
        Rational.zero r.Workload.values
    in
    check_rational "efficiency" Rational.one total
  | _ -> Alcotest.fail "expected one case result"

let suite =
  [
    prop_engine_vs_naive;
    prop_engine_vs_naive_graph;
    prop_efficiency;
    prop_banzhaf;
    prop_bounded_cache;
    Alcotest.test_case "symmetry on star spokes" `Quick test_symmetry;
    Alcotest.test_case "null player" `Quick test_null_player;
    Alcotest.test_case "single compilation + counter contract" `Quick
      test_single_compilation;
    Alcotest.test_case "bounded cache drops, never lies" `Quick
      test_bounded_cache_drops;
    Alcotest.test_case "memo reuse across counts" `Quick test_memo_reuse;
    Alcotest.test_case "guards" `Quick test_engine_guards;
    Alcotest.test_case "fgmc polynomial" `Quick test_fgmc_polynomial;
    Alcotest.test_case "workload eval stats" `Quick test_workload_eval;
  ]
