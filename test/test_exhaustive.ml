(* Bounded-exhaustive correctness sweep.

   Enumerate EVERY partitioned database over a small fact universe (each
   fact absent / endogenous / exogenous) and check, for several queries of
   different classes, that the whole pipeline agrees with brute force:

   - FGMC polynomial (lineage+compile) = brute-force subset enumeration;
   - SVC via the Claim A.1 route = Eq. 2 brute force (for one fact);
   - the SPPQE identity of Claim A.2 at p = 1/3;
   - the Lemma 4.1 reduction where a pseudo-connectivity witness exists.

   Unlike the random property tests, this leaves no gaps within its
   universe: 3^|U| databases per query. *)

open Test_util

let universes =
  [
    ( "q_RST",
      Query_parse.parse "R(?x), S(?x,?y), T(?y)",
      [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ];
        fact "S" [ "1"; "1" ]; fact "T" [ "1" ]; fact "R" [ "2" ] ] );
    ( "hierarchical",
      Query_parse.parse "R(?x), S(?x,?y)",
      [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "S" [ "1"; "3" ];
        fact "R" [ "2" ]; fact "S" [ "2"; "3" ]; fact "S" [ "3"; "3" ] ] );
    ( "union",
      Query_parse.parse "ucq: R(?x) | S(?x,?y), T(?y)",
      [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ];
        fact "S" [ "2"; "1" ]; fact "T" [ "1" ] ] );
    ( "rpq",
      Query_parse.parse "rpq: (AB)(s,t)",
      [ fact "A" [ "s"; "1" ]; fact "B" [ "1"; "t" ]; fact "A" [ "s"; "2" ];
        fact "B" [ "2"; "t" ]; fact "A" [ "s"; "t" ] ] );
    ( "negation",
      Query_parse.parse "cqneg: R(?x), S(?x,?y), !T(?y)",
      [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ];
        fact "S" [ "1"; "1" ]; fact "T" [ "1" ] ] );
    ( "generalized negation",
      Query_parse.parse "gcq: S(?x,?y), !(A(?x) & B(?y))",
      [ fact "S" [ "1"; "2" ]; fact "A" [ "1" ]; fact "B" [ "2" ];
        fact "S" [ "2"; "1" ]; fact "A" [ "2" ] ] );
    ( "crpq",
      Query_parse.parse "crpq: (AB+BA)(?x,a)",
      [ fact "A" [ "1"; "2" ]; fact "B" [ "2"; "a" ]; fact "B" [ "1"; "2" ];
        fact "A" [ "2"; "a" ]; fact "A" [ "a"; "1" ] ] );
    ( "cq with constants",
      Query_parse.parse "R(a,?x), S(?x,b)",
      [ fact "R" [ "a"; "1" ]; fact "S" [ "1"; "b" ]; fact "R" [ "a"; "2" ];
        fact "S" [ "2"; "b" ]; fact "R" [ "c"; "1" ] ] );
    ( "rpq with epsilon",
      Query_parse.parse "rpq: (A*)(s,t)",
      [ fact "A" [ "s"; "1" ]; fact "A" [ "1"; "t" ]; fact "A" [ "s"; "t" ];
        fact "A" [ "t"; "s" ] ] );
    ( "conjunction",
      Query.And (Query_parse.parse "R(?x)", Query_parse.parse "ucq: S(?y) | T(?y,?z)"),
      [ fact "R" [ "1" ]; fact "S" [ "2" ]; fact "T" [ "2"; "3" ]; fact "R" [ "2" ];
        fact "T" [ "3"; "3" ] ] );
  ]

let sweep_counting (name, q, universe) =
  Alcotest.test_case (name ^ ": FGMC on all databases") `Slow (fun () ->
      let checked = ref 0 in
      Gen.iter_databases universe (fun db ->
          incr checked;
          if not (fgmc_agree q db) then
            Alcotest.failf "FGMC mismatch on %s" (Format.asprintf "%a" Database.pp db));
      Alcotest.(check int)
        "all databases checked"
        (int_of_float (3. ** float_of_int (List.length universe)))
        !checked)

let sweep_svc (name, q, universe) =
  Alcotest.test_case (name ^ ": SVC on all databases") `Slow (fun () ->
      Gen.iter_databases universe (fun db ->
          match Database.endo_list db with
          | [] -> ()
          | mu :: _ ->
            let v1 = Svc.svc q db mu in
            let v2 = Svc.svc_brute q db mu in
            if not (Rational.equal v1 v2) then
              Alcotest.failf "SVC mismatch on %s" (Format.asprintf "%a" Database.pp db)))

(* The circuit backend against raw Eq. 2 game enumeration, for EVERY fact
   of EVERY database over the universe — the knowledge-compilation path
   gets the same no-gaps treatment as the conditioning one. *)
let sweep_circuit (name, q, universe) =
  Alcotest.test_case (name ^ ": circuit backend on all databases") `Slow
    (fun () ->
       Gen.iter_databases universe (fun db ->
           if Database.size_endo db > 0 then
             let e = Engine.create ~backend:`Circuit q db in
             List.iter
               (fun (mu, v) ->
                  if not (Rational.equal v (Svc.svc_brute q db mu)) then
                    Alcotest.failf "circuit SVC mismatch on %s at %s"
                      (Format.asprintf "%a" Database.pp db)
                      (Fact.to_string mu))
               (Engine.svc_all e)))

(* The sampling backend gets the same no-gaps treatment: on EVERY
   database over the universe, (a) the hybrid estimator with every
   stratum under the exact cap equals Eq. 2 brute force rationally, and
   (b) a budget-bound Monte-Carlo run at δ = 10⁻⁹ traps the true value
   inside every reported interval — the stopping rule never reports a
   half-width below the true error. *)
let sweep_sample (name, q, universe) =
  Alcotest.test_case (name ^ ": sampling backend on all databases") `Slow
    (fun () ->
       let mc =
         Sample.config ~strategy:Sample.Monte_carlo ~seed:0
           ~epsilon:(Rational.of_ints 1 1000)
           ~confidence:(Rational.of_ints 999_999_999 1_000_000_000)
           ~max_draws:128 ~batch:64 ()
       in
       Gen.iter_databases universe (fun db ->
           if Database.size_endo db > 0 then begin
             let brute =
               List.map
                 (fun f -> (f, Svc.svc_brute q db f))
                 (Database.endo_list db)
             in
             let hybrid =
               Engine.svc_all
                 (Engine.create ~backend:(`Sample Sample.default) q db)
             in
             List.iter2
               (fun (f1, v1) (f2, v2) ->
                  if not (Fact.equal f1 f2 && Rational.equal v1 v2) then
                    Alcotest.failf "hybrid-exact SVC mismatch on %s at %s"
                      (Format.asprintf "%a" Database.pp db)
                      (Fact.to_string f1))
               hybrid brute;
             let e = Engine.create ~backend:(`Sample mc) q db in
             ignore (Engine.svc_all e);
             let r = Option.get (Engine.sample_report e) in
             Array.iter
               (fun (est : Sample.estimate) ->
                  let truth = List.assoc est.Sample.fact brute in
                  if
                    Rational.lt est.Sample.half_width
                      (Rational.abs (Rational.sub est.Sample.value truth))
                  then
                    Alcotest.failf "CI misses the true value on %s at %s"
                      (Format.asprintf "%a" Database.pp db)
                      (Fact.to_string est.Sample.fact))
               r.Sample.estimates
           end))

let sweep_sppqe (name, q, universe) =
  Alcotest.test_case (name ^ ": SPPQE on all databases") `Slow (fun () ->
      let p = Rational.of_ints 1 3 in
      Gen.iter_databases universe (fun db ->
          let v1 = Pqe.sppqe q db p in
          let v2 = Pqe.pqe_brute q (Prob_db.uniform db p) in
          if not (Rational.equal v1 v2) then
            Alcotest.failf "SPPQE mismatch on %s" (Format.asprintf "%a" Database.pp db)))

let sweep_lemma41 =
  (* only for the hom-closed connected queries in the corpus; use a smaller
     universe to keep the n+1 SVC-oracle calls per database affordable *)
  Alcotest.test_case "q_RST: Lemma 4.1 on all small databases" `Slow (fun () ->
      let q = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
      let universe =
        [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "T" [ "1" ] ]
      in
      Gen.iter_databases universe (fun db ->
          match Fgmc_to_svc.lemma41_auto ~svc:(Oracle.svc_of q) ~query:q db with
          | Some poly ->
            if not (Poly.Z.equal poly (Model_counting.fgmc_polynomial q db)) then
              Alcotest.failf "Lemma 4.1 mismatch on %s"
                (Format.asprintf "%a" Database.pp db)
          | None -> Alcotest.fail "missing witness"))

(* Shapley values of constants, exhaustively over all endogenous-constant
   partitions of a fixed small database (Section 6.4 + Prop. 6.3). *)
let sweep_constants =
  Alcotest.test_case "constants: all partitions of a small database" `Slow (fun () ->
      let q = Query_parse.parse "R(?x,?y), T(?y,?z)" in
      let fs =
        facts
          [ fact "R" [ "1"; "2" ]; fact "T" [ "2"; "3" ]; fact "R" [ "4"; "2" ];
            fact "T" [ "2"; "1" ] ]
      in
      let consts = Term.Sset.elements (Fact.Set.consts fs) in
      let n = List.length consts in
      for mask = 0 to (1 lsl n) - 1 do
        let endo_consts =
          List.fold_left
            (fun acc (i, c) ->
               if mask land (1 lsl i) <> 0 then Term.Sset.add c acc else acc)
            Term.Sset.empty
            (List.mapi (fun i c -> (i, c)) consts)
        in
        let inst = Const_svc.make_instance ~facts:fs ~endo_consts in
        (* counting: lineage-based = brute *)
        if
          not
            (Poly.Z.equal
               (Const_svc.fgmc_const_polynomial q inst)
               (Const_svc.fgmc_const_polynomial_brute q inst))
        then Alcotest.failf "fgmc_const mismatch on mask %d" mask;
        (* Prop 6.3 backward direction on the first endogenous constant *)
        match Term.Sset.min_elt_opt endo_consts with
        | None -> ()
        | Some c ->
          let via_red =
            Const_red.svc_const_via_fgmc_const
              ~fgmc_const:(Const_red.fgmc_const_oracle q) inst c
          in
          if not (Rational.equal via_red (Const_svc.svc_const q inst c)) then
            Alcotest.failf "svc_const mismatch on mask %d" mask
      done)

(* ------------------------------------------------------------------ *)
(* Conformance goldens                                                 *)
(*                                                                     *)
(* MD5 digests of the full SVC output on pinned registry instances,    *)
(* per backend and at jobs ∈ {1, 4}.  These pin the outputs            *)
(* bit-identically: any change to arithmetic, compilation order, or    *)
(* the parallel merge that alters a single printed rational flips a    *)
(* digest.  The conditioning and circuit backends (and the hybrid      *)
(* sampler when every stratum fits under its exact cap, as on [star])  *)
(* must produce the same digest; the sampler's Monte-Carlo fallback on *)
(* [bipartite] is seeded, so its digest is pinned too — just to a      *)
(* different value.                                                    *)
(* ------------------------------------------------------------------ *)

let svc_digest ~backend ~jobs (case : Workload.case) =
  let e = Engine.create ~backend ~jobs case.Workload.query case.Workload.db in
  let lines =
    List.map
      (fun (f, v) -> Fact.to_string f ^ "=" ^ Rational.to_string v)
      (Engine.svc_all e)
  in
  Digest.to_hex (Digest.string (String.concat "\n" lines))

let golden_digests =
  [
    ("star", 0, 4, "conditioning", `Conditioning, "e14544f048cd5f512a659a81cb19c421");
    ("star", 0, 4, "circuit", `Circuit, "e14544f048cd5f512a659a81cb19c421");
    ("star", 0, 4, "sample", `Sample Sample.default, "e14544f048cd5f512a659a81cb19c421");
    ("bipartite", 0, 3, "conditioning", `Conditioning, "8992ce54d6c7c1d164db03d7ddecfd89");
    ("bipartite", 0, 3, "circuit", `Circuit, "8992ce54d6c7c1d164db03d7ddecfd89");
    ("bipartite", 0, 3, "sample", `Sample Sample.default, "4041ff4ef8eb85fe26781109ed998c4a");
  ]

let conformance_goldens =
  Alcotest.test_case "conformance: golden SVC digests per backend x jobs" `Quick
    (fun () ->
       List.iter
         (fun (family, seed, size, bname, backend, expected) ->
            let case = Workload.generate ~family ~seed ~size in
            List.iter
              (fun jobs ->
                 Alcotest.(check string)
                   (Printf.sprintf "%s/%d/%d %s jobs=%d" family seed size bname jobs)
                   expected
                   (svc_digest ~backend ~jobs case))
              [ 1; 4 ])
         golden_digests)

(* The one-line JSON emitted by [Stats.to_json] is consumed by the bench
   harness and the serving layer; pin its field names and order so a
   refactor of the stats record cannot silently reshape it. *)
let stats_json_keys =
  [
    "players"; "compilations"; "conditionings"; "cache_hits"; "cache_misses";
    "cache_size"; "cache_capacity"; "cache_drops"; "poly_ops"; "jobs";
    "par_facts"; "par_cache_hits"; "par_cache_misses"; "par_steals";
    "compile_ms"; "eval_ms"; "backend"; "circuit_nodes"; "circuit_edges";
    "circuit_smoothing"; "circuit_cache_hits"; "circuit_cache_misses";
    "circuit_cache_drops"; "circuit_compile_ms"; "circuit_traverse_ms";
    "sample_strategy"; "sample_seed"; "sample_draws"; "sample_exact_strata";
    "sample_sampled_strata"; "sample_max_hw"; "sample_epsilon";
    "sample_confidence"; "sample_converged";
  ]

let json_keys s =
  (* top-level keys of a flat one-line JSON object: no nested objects and
     no commas inside values, which holds for [Stats.to_json] output *)
  let body = String.sub s 1 (String.length s - 2) in
  List.map
    (fun field ->
       match String.index_opt field ':' with
       | Some i ->
         let k = String.trim (String.sub field 0 i) in
         String.sub k 1 (String.length k - 2)
       | None -> Alcotest.failf "malformed JSON field %S" field)
    (String.split_on_char ',' body)

let stats_json_shape =
  Alcotest.test_case "Stats.to_json shape is pinned" `Quick (fun () ->
      Alcotest.(check (list string))
        "keys of zero" stats_json_keys
        (json_keys (Stats.to_json Stats.zero));
      let case = Workload.generate ~family:"star" ~seed:0 ~size:3 in
      List.iter
        (fun backend ->
           let e = Engine.create ~backend ~jobs:4 case.Workload.query case.Workload.db in
           ignore (Engine.svc_all e);
           Alcotest.(check (list string))
             "keys of a live run" stats_json_keys
             (json_keys (Stats.to_json (Engine.stats e))))
        [ `Conditioning; `Circuit; `Sample Sample.default ])

let suite =
  List.concat_map
    (fun entry -> [ sweep_counting entry; sweep_sppqe entry ])
    universes
  @ List.map sweep_svc
      (List.filter (fun (n, _, _) -> n = "q_RST" || n = "negation") universes)
  @ List.map sweep_circuit
      (List.filter (fun (n, _, _) -> n = "q_RST" || n = "negation") universes)
  @ List.map sweep_sample
      (List.filter (fun (n, _, _) -> n = "q_RST" || n = "negation") universes)
  @ [ sweep_lemma41; sweep_constants; conformance_goldens; stats_json_shape ]
