(* Differential/metamorphic suite for the multicore parallel engine and
   the [lib/parallel] fork/join pool.

   The parallel engine's contract is that [jobs] is unobservable in the
   answers: for every (query, database), jobs ∈ {1, 2, 4} produce lists
   that are structurally equal to each other and to the pre-engine
   per-fact oracle [Svc.svc_all_naive] — same facts, same order, same
   rationals.  On top of the differentials: a determinism regression
   (two jobs=4 runs are identical, values and normalized stats), and a
   unit suite for the pool itself (degenerate shapes, exception
   propagation without wedging). *)

open Test_util

let values_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2
       (fun (f1, x1) (f2, x2) -> Fact.equal f1 f2 && Rational.equal x1 x2)
       v1 v2

(* ------------------------------------------------------------------ *)
(* Pool unit suite                                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_empty () =
  let pool = Pool.create ~domains:4 in
  Alcotest.(check (array int)) "empty in, empty out" [||]
    (Pool.map pool (fun x -> x + 1) [||])

let test_pool_single () =
  let pool = Pool.create ~domains:4 in
  Alcotest.(check (array int)) "one item" [| 42 |]
    (Pool.map pool (fun x -> x * 2) [| 21 |])

let test_pool_fewer_items_than_domains () =
  let pool = Pool.create ~domains:8 in
  let out, stats = Pool.map_stats ~chunk:1 pool string_of_int [| 1; 2; 3 |] in
  Alcotest.(check (array string)) "3 items on 8 domains" [| "1"; "2"; "3" |] out;
  Alcotest.(check int) "every chunk claimed exactly once" 3
    (Array.fold_left ( + ) 0 stats.Pool.claims)

let test_pool_matches_array_map () =
  let input = Array.init 257 (fun i -> i - 128) in
  let f x = (x * x) - (3 * x) + 1 in
  List.iter
    (fun (domains, chunk) ->
       let pool = Pool.create ~domains in
       Alcotest.(check (array int))
         (Printf.sprintf "domains=%d chunk=%d" domains chunk)
         (Array.map f input)
         (Pool.map ~chunk pool f input))
    [ (1, 1); (2, 7); (4, 1); (4, 64); (3, 500) ]

let test_pool_exception () =
  let pool = Pool.create ~domains:4 in
  let boom = Failure "worker exploded" in
  Alcotest.check_raises "exception propagates" boom (fun () ->
      ignore
        (Pool.map ~chunk:1 pool
           (fun x -> if x = 5 then raise boom else x)
           (Array.init 32 Fun.id)));
  (* the pool never wedges: the same value is immediately reusable *)
  Alcotest.(check (array int)) "pool survives a raising worker"
    (Array.init 32 succ)
    (Pool.map ~chunk:1 pool succ (Array.init 32 Fun.id))

let test_pool_guards () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
        ignore (Pool.create ~domains:0));
  Alcotest.check_raises "zero chunk"
    (Invalid_argument "Pool.map_stats: chunk must be >= 1") (fun () ->
        ignore (Pool.map ~chunk:0 (Pool.create ~domains:2) Fun.id [| 1 |]));
  Alcotest.(check bool) "recommended_domains >= 1" true
    (Pool.recommended_domains () >= 1)

(* The bench JSONs' "skipped" field is machine-read by CI tooling; pin
   the exact strings so a rewording shows up as a test failure, not as
   a silently broken artifact consumer. *)
let test_bench_gate_shape () =
  let check = Alcotest.(check (option string)) in
  check "1-domain host, no cap" (Some "host_domains=1")
    (Pool.bench_gate ~required:4 ~host:1 ~cap:None);
  check "host check outranks the cap" (Some "host_domains=1")
    (Pool.bench_gate ~required:4 ~host:1 ~cap:(Some 20));
  check "capped smoke run on a capable host" (Some "cap=20")
    (Pool.bench_gate ~required:4 ~host:4 ~cap:(Some 20));
  check "enforceable gate" None (Pool.bench_gate ~required:4 ~host:8 ~cap:None)

(* ------------------------------------------------------------------ *)
(* Differential properties: jobs is unobservable in the values         *)
(* ------------------------------------------------------------------ *)

let prop_jobs_vs_naive =
  qcheck ~count:200 "svc_all jobs∈{1,2,4} = naive oracle" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let naive = Svc.svc_all_naive q db in
       List.for_all
         (fun jobs -> values_equal naive (Svc.svc_all ~jobs q db))
         [ 1; 2; 4 ])

let prop_jobs_vs_naive_graph =
  qcheck ~count:100 "parallel engine on rpq graph instances" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_graph_case seed in
       let naive = Svc.svc_all_naive q db in
       List.for_all
         (fun jobs -> values_equal naive (Svc.svc_all ~jobs q db))
         [ 2; 4 ])

let prop_banzhaf_parallel =
  qcheck ~count:60 "parallel banzhaf_all = per-fact banzhaf" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let e = Engine.create ~jobs:4 q db in
       values_equal (Engine.banzhaf_all e)
         (List.map (fun f -> (f, Svc.banzhaf q db f)) (Database.endo_list db)))

(* jobs=0 resolves to the host's core count; a tiny per-domain cache can
   change counters, never values *)
let prop_auto_jobs_and_tiny_cache =
  qcheck ~count:40 "jobs=0 auto + bounded parallel cache" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let reference = Svc.svc_all_naive q db in
       let auto = Engine.create ~jobs:0 q db in
       let squeezed = Engine.create ~jobs:3 ~cache_capacity:2 q db in
       Engine.jobs auto >= 1
       && values_equal reference (Engine.svc_all auto)
       && values_equal reference (Engine.svc_all squeezed))

(* ------------------------------------------------------------------ *)
(* Determinism regression: two jobs=4 runs of the same workload are    *)
(* identical — ordered values and every deterministic stats field      *)
(* ------------------------------------------------------------------ *)

let test_determinism_regression () =
  let w =
    Workload.make ~name:"determinism"
      ~cases:
        [ Workload.case ~name:"star" ~query_src:"R(?x), S(?x,?y)"
            ~db:(Gen.star ~spokes:7);
          Workload.case ~name:"rst" ~query_src:"R(?x), S(?x,?y), T(?y)"
            ~db:(Gen.bipartite ~rows:3) ]
  in
  let r1 = Workload.eval ~jobs:4 w in
  let r2 = Workload.eval ~jobs:4 w in
  List.iter2
    (fun (a : Workload.case_result) (b : Workload.case_result) ->
       Alcotest.(check bool)
         (a.Workload.rcase.Workload.cname ^ ": identical ordered values") true
         (values_equal a.Workload.values b.Workload.values);
       Alcotest.(check bool)
         (a.Workload.rcase.Workload.cname ^ ": identical deterministic stats")
         true
         (Stats.normalize a.Workload.stats = Stats.normalize b.Workload.stats))
    r1 r2

(* the parallel stats contract: every fact evaluated exactly once across
   the domain slots, n+1 conditionings as in the serial engine, one slot
   record per worker *)
let test_parallel_stats_shape () =
  let db = Gen.star ~spokes:9 in
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let e = Engine.create ~jobs:4 q db in
  ignore (Engine.svc_all e);
  let s = Engine.stats e in
  let n = Database.size_endo db in
  Alcotest.(check int) "jobs" 4 s.Stats.jobs;
  Alcotest.(check int) "one slot per worker" 4 (Array.length s.Stats.domains);
  Alcotest.(check int) "every fact evaluated once" n (Stats.par_facts s);
  Alcotest.(check int) "one compilation" 1 s.Stats.compilations;
  Alcotest.(check int) "n+1 conditionings" (n + 1) s.Stats.conditionings;
  Alcotest.(check bool) "per-domain caches did work" true (Stats.par_misses s > 0)

(* ------------------------------------------------------------------ *)
(* Compile padding-polynomial memoization is referentially transparent *)
(* (its table is domain-local, so this also holds inside workers)      *)
(* ------------------------------------------------------------------ *)

let prop_one_plus_z_pow_transparent =
  qcheck ~count:100 "one_plus_z_pow k = (1+z)^k, stable across calls"
    QCheck2.Gen.(int_range 0 60)
    (fun k ->
       let expected =
         Poly.Z.of_coeffs (Array.to_list (Bigint.binomial_row k))
       in
       Poly.Z.equal expected (Compile.one_plus_z_pow k)
       && Poly.Z.equal (Compile.one_plus_z_pow k) (Compile.one_plus_z_pow k))

let test_one_plus_z_pow_in_domains () =
  (* the memo table is domain-local: a fresh domain starts cold and still
     answers identically *)
  let ks = [ 0; 1; 5; 17 ] in
  let here = List.map Compile.one_plus_z_pow ks in
  let there =
    Domain.join (Domain.spawn (fun () -> List.map Compile.one_plus_z_pow ks))
  in
  List.iter2 (check_zpoly "same polynomial across domains") here there

let suite =
  [
    Alcotest.test_case "pool: empty array" `Quick test_pool_empty;
    Alcotest.test_case "pool: single item" `Quick test_pool_single;
    Alcotest.test_case "pool: fewer items than domains" `Quick
      test_pool_fewer_items_than_domains;
    Alcotest.test_case "pool: map = Array.map" `Quick test_pool_matches_array_map;
    Alcotest.test_case "pool: exceptions propagate, pool survives" `Quick
      test_pool_exception;
    Alcotest.test_case "pool: guards" `Quick test_pool_guards;
    Alcotest.test_case "bench_gate skip-reason shape" `Quick
      test_bench_gate_shape;
    prop_jobs_vs_naive;
    prop_jobs_vs_naive_graph;
    prop_banzhaf_parallel;
    prop_auto_jobs_and_tiny_cache;
    Alcotest.test_case "determinism regression at jobs=4" `Quick
      test_determinism_regression;
    Alcotest.test_case "parallel stats shape" `Quick test_parallel_stats_shape;
    prop_one_plus_z_pow_transparent;
    Alcotest.test_case "padding memo is domain-local" `Quick
      test_one_plus_z_pow_in_domains;
  ]
