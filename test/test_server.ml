(* Lockdown of the serving layer (PR 9): the delta-update differential
   identity, the frame codec, and the protocol's error discipline.

   The load-bearing property is the differential identity behind
   [Engine.update] — an engine chained through a random sequence of
   insert/delete deltas answers exactly like a cold [Engine.create] on
   the final database, for every exact backend and job count (and for
   the hybrid sampler kept rationally exact by a generous [exact_cap]).
   Random sequences over the registry families are backed by an
   exhaustive sweep of every single-fact change against every
   partitioned database of a small universe, in the 3^|U| style of
   test_exhaustive.ml.

   The protocol side never trusts its input: every malformed frame,
   truncated prefix, oversized payload or bad request must produce a
   structured error frame, never an exception, and must leave the
   server able to answer the next valid request correctly — pinned by
   unit cases for each error class and a byte-mangling fuzzer. *)

let values_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (f, v) (g, w) -> Fact.equal f g && Rational.equal v w)
       a b

(* ------------------------------------------------------------------ *)
(* Delta-update differential suite                                     *)
(* ------------------------------------------------------------------ *)

(* Keeps the hybrid sampler exact on every instance this suite builds:
   all strata fall under the cap, so estimates are enumerations. *)
let exact_sample = `Sample (Sample.config ~exact_cap:10_000 ())

let diff_families = [ "star"; "bipartite"; "cqneg"; "const-svc" ]

(* One random episode: draw a family instance, then [steps] random
   single-fact changes (inserts from a larger sibling instance of the
   same family, deletes of present facts), chaining one engine through
   [Engine.update] while checking it against a cold engine on the
   current database after every step. *)
let differential_episode ~backend ~jobs ~steps seed =
  let r = Workload.rng seed in
  let family = Workload.pick r diff_families in
  let size = 2 + Workload.int r 2 in
  let case = Workload.generate ~family ~seed:(Workload.int r 100) ~size in
  let donor =
    Workload.generate ~family ~seed:(1 + Workload.int r 100) ~size:(size + 2)
  in
  let pool = Fact.Set.elements (Database.all donor.Workload.db) in
  let engine = ref (Engine.create ~backend ~jobs case.Workload.query case.Workload.db) in
  let db = ref case.Workload.db in
  let ok = ref true in
  for _ = 1 to steps do
    let present = Fact.Set.elements (Database.all !db) in
    let absent = List.filter (fun f -> not (Database.mem f !db)) pool in
    let pick_insert () =
      let f = Workload.pick r absent in
      let part = if Workload.int r 2 = 0 then `Endo else `Exo in
      `Insert (part, f)
    in
    let pick_delete () = `Delete (Workload.pick r present) in
    let change =
      if present = [] && absent = [] then None
      else if present = [] then Some (pick_insert ())
      else if absent = [] then Some (pick_delete ())
      else if Workload.int r 2 = 0 then Some (pick_insert ())
      else Some (pick_delete ())
    in
    match change with
    | None -> ()
    | Some change ->
      (db :=
         match change with
         | `Insert (`Endo, f) -> Database.add_endo f !db
         | `Insert (`Exo, f) -> Database.add_exo f !db
         | `Delete f -> Database.remove f !db);
      engine := Engine.update !engine change;
      let cold = Engine.create ~backend ~jobs case.Workload.query !db in
      if not (values_equal (Engine.svc_all !engine) (Engine.svc_all cold))
      then ok := false
  done;
  !ok

let diff_test name ~backend ~jobs =
  Test_util.qcheck ~count:300
    (Printf.sprintf "delta chain = cold recompute (%s)" name)
    Gen.seed_gen
    (differential_episode ~backend ~jobs ~steps:3)

(* Exhaustive small-universe sweep: every partitioned database over a
   3-fact universe x every applicable single-fact change x every
   backend.  3^3 databases, ~5 changes each — small enough to cover
   completely, sharp enough to catch any reuse unsoundness the random
   episodes might miss. *)
let test_exhaustive_single_deltas () =
  let q = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
  let universe =
    [ Fact.make "R" [ "1" ]; Fact.make "S" [ "1"; "2" ]; Fact.make "T" [ "2" ] ]
  in
  let backends =
    [ ("conditioning", `Conditioning); ("circuit", `Circuit);
      ("sample", exact_sample) ]
  in
  let cases = ref 0 in
  Gen.iter_databases universe (fun db ->
      let changes =
        List.concat_map
          (fun f ->
             if Database.mem f db then [ `Delete f ]
             else [ `Insert (`Endo, f); `Insert (`Exo, f) ])
          universe
      in
      List.iter
        (fun change ->
           let db' =
             match change with
             | `Insert (`Endo, f) -> Database.add_endo f db
             | `Insert (`Exo, f) -> Database.add_exo f db
             | `Delete f -> Database.remove f db
           in
           List.iter
             (fun (name, backend) ->
                incr cases;
                let updated =
                  Engine.update (Engine.create ~backend q db) change
                in
                let cold = Engine.create ~backend q db' in
                if
                  not
                    (values_equal (Engine.svc_all updated)
                       (Engine.svc_all cold))
                then
                  Alcotest.failf "update <> cold recompute (%s backend)" name)
             backends)
        changes);
  Alcotest.(check bool) "swept some cases" true (!cases > 100)

(* Chained updates keep the original engine usable: answers on the old
   engine still describe the old database. *)
let test_update_persistence () =
  let case = Workload.generate ~family:"star" ~seed:0 ~size:4 in
  let e0 = Engine.create case.Workload.query case.Workload.db in
  let before = Engine.svc_all e0 in
  let victim = List.hd (Database.endo_list case.Workload.db) in
  let _e1 = Engine.update e0 (`Delete victim) in
  Alcotest.(check bool) "old engine unchanged" true
    (values_equal before (Engine.svc_all e0))

let test_update_validation () =
  let case = Workload.generate ~family:"star" ~seed:0 ~size:3 in
  let e = Engine.create case.Workload.query case.Workload.db in
  let present = List.hd (Database.endo_list case.Workload.db) in
  let absent = Fact.make "R" [ "no-such-const" ] in
  Alcotest.check_raises "insert present"
    (Invalid_argument "Engine.update: inserted fact is already present")
    (fun () -> ignore (Engine.update e (`Insert (`Endo, present))));
  Alcotest.check_raises "delete absent"
    (Invalid_argument "Engine.update: deleted fact is not present")
    (fun () -> ignore (Engine.update e (`Delete absent)))

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let read_all s =
  let src = Frame.source_of_string s in
  let rec go acc =
    match Frame.read src with
    | Ok None -> List.rev acc
    | Ok (Some p) -> go (p :: acc)
    | Error e -> Alcotest.failf "frame error: %s" (Frame.error_message e)
  in
  go []

let payload_gen =
  (* arbitrary bytes, newlines and quotes included: framing must not
     care what the payload looks like *)
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (0 -- 64))

let frame_roundtrip =
  Test_util.qcheck ~count:300 "frame encode/read roundtrip"
    QCheck2.Gen.(list_size (0 -- 5) payload_gen)
    (fun payloads ->
       let wire = String.concat "" (List.map Frame.encode payloads) in
       List.for_all2 String.equal payloads (read_all wire))

let frame_err = function
  | Ok _ -> Alcotest.fail "expected a frame error"
  | Error e -> e

let test_frame_negative () =
  let read s = Frame.read (Frame.source_of_string s) in
  Alcotest.(check bool) "clean eof" true (read "" = Ok None);
  (match frame_err (read "abc\n") with
   | Frame.Malformed _ -> ()
   | e -> Alcotest.failf "want Malformed, got %s" (Frame.error_message e));
  (match frame_err (read "5\nab") with
   | Frame.Truncated _ -> ()
   | e -> Alcotest.failf "want Truncated, got %s" (Frame.error_message e));
  (match frame_err (read "2\nabX") with
   | Frame.Malformed _ -> ()
   | e -> Alcotest.failf "want Malformed, got %s" (Frame.error_message e));
  (match frame_err (read "123456789\nx") with
   | Frame.Malformed _ -> ()
   | e -> Alcotest.failf "want Malformed, got %s" (Frame.error_message e));
  (match frame_err (read "42") with
   | Frame.Truncated _ -> ()
   | e -> Alcotest.failf "want Truncated, got %s" (Frame.error_message e));
  (* oversized: recoverable, and the next frame still reads *)
  let src =
    Frame.source_of_string (Frame.encode "0123456789" ^ Frame.encode "ok")
  in
  (match Frame.read ~max_len:4 src with
   | Error (Frame.Oversized 10) -> ()
   | Error e -> Alcotest.failf "want Oversized 10, got %s" (Frame.error_message e)
   | Ok _ -> Alcotest.fail "expected Oversized");
  Alcotest.(check bool) "framing survives oversized" true
    (Frame.read ~max_len:4 src = Ok (Some "ok"))

let frame_read_total =
  (* [read] is total on arbitrary bytes: an error or a payload, never an
     exception, and the loop always terminates *)
  Test_util.qcheck ~count:300 "frame read is total on garbage"
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (0 -- 80))
    (fun s ->
       let src = Frame.source_of_string s in
       let rec go () =
         match Frame.read ~max_len:32 src with
         | Ok None -> true
         | Ok (Some _) -> go ()
         | Error e -> if Frame.recoverable e then go () else true
       in
       go ())

(* ------------------------------------------------------------------ *)
(* Protocol: structured errors, cache discipline                       *)
(* ------------------------------------------------------------------ *)

let db_text = "endo R(1)\nendo S(1,2)\nendo T(2)\nexo T(3)\n"
let q_src = "R(?x), S(?x,?y), T(?y)"

let mk_server ?capacity ?max_frame ?journal_limit () =
  let s = Server.create ?capacity ?max_frame ?journal_limit () in
  Server.load_db s ~name:"d" ~text:db_text;
  s

let session reqs = String.concat "" (List.map Frame.encode reqs)

let jfield payload k =
  match Tracejson.parse payload with
  | Ok (Tracejson.Obj kvs) -> List.assoc_opt k kvs
  | _ -> Alcotest.failf "response is not a JSON object: %s" payload

let jok payload =
  match jfield payload "ok" with Some (Tracejson.Bool b) -> b | _ -> false

let jstr payload k =
  match jfield payload k with
  | Some (Tracejson.Str s) -> s
  | _ -> Alcotest.failf "missing string field %S in %s" k payload

let jvalues payload =
  match jfield payload "values" with
  | Some (Tracejson.Arr vs) ->
    List.map
      (fun v ->
         match v with
         | Tracejson.Obj kvs ->
           let str k =
             match List.assoc_opt k kvs with
             | Some (Tracejson.Str s) -> s
             | _ -> Alcotest.failf "values entry misses %S" k
           in
           (Db_text.parse_fact (str "fact"), Rational.of_string (str "value"))
         | _ -> Alcotest.fail "values entry is not an object")
      vs
  | _ -> Alcotest.failf "missing values array in %s" payload

let eval_req ?(db = "d") ?(query = q_src) ?backend () =
  let b = match backend with None -> "" | Some b -> Printf.sprintf ",\"backend\":%S" b in
  Printf.sprintf "{\"op\":\"eval\",\"db\":%S,\"query\":%S%s}" db query b

let expected_values db =
  Engine.svc_all (Engine.create (Query_parse.parse q_src) db)

let test_protocol_errors () =
  let s = mk_server () in
  let reqs =
    [
      "{\"op\":";  (* bad json *)
      "{\"op\":\"frobnicate\"}";
      "{\"db\":\"d\"}";  (* missing op *)
      eval_req ~db:"nope" ();
      eval_req ~backend:"quantum" ();
      "{\"op\":\"insert\",\"db\":\"d\",\"fact\":\"R(1)\"}";  (* present *)
      "{\"op\":\"delete\",\"db\":\"d\",\"fact\":\"R(9)\"}";  (* absent *)
      "{\"op\":\"eval\",\"db\":\"d\",\"query\":\"" ^ q_src
      ^ "\",\"facts\":[\"T(3)\"]}";  (* exogenous: not an answer row *)
      "{\"op\":\"eval\",\"db\":\"d\"}";  (* missing query *)
      eval_req ();  (* and a valid one still works *)
    ]
  in
  let out = read_all (Server.serve_string s (session reqs)) in
  Alcotest.(check int) "one response per request" (List.length reqs)
    (List.length out);
  let codes =
    List.map (fun p -> if jok p then "ok" else jstr p "error") out
  in
  Alcotest.(check (list string)) "error codes"
    [
      "bad_json"; "unknown_op"; "bad_request"; "unknown_db"; "bad_request";
      "bad_request"; "bad_request"; "bad_request"; "bad_request"; "ok";
    ]
    codes;
  let final = List.nth out (List.length out - 1) in
  Alcotest.(check bool) "valid eval correct after errors" true
    (values_equal (jvalues final) (expected_values (Db_text.parse db_text)))

let test_frame_error_fatal () =
  let s = mk_server () in
  let wire =
    Frame.encode "{\"op\":\"ping\"}" ^ "not a frame\n"
    ^ Frame.encode "{\"op\":\"ping\"}"
  in
  let out = read_all (Server.serve_string s wire) in
  Alcotest.(check int) "pong + frame error, then stop" 2 (List.length out);
  Alcotest.(check bool) "pong ok" true (jok (List.nth out 0));
  Alcotest.(check string) "frame error code" "frame"
    (jstr (List.nth out 1) "error")

let test_oversized_recoverable () =
  let s = mk_server ~max_frame:32 () in
  let wire =
    Frame.encode (String.make 64 'x') ^ Frame.encode "{\"op\":\"ping\"}"
  in
  let out = read_all (Server.serve_string s wire) in
  Alcotest.(check int) "error + pong" 2 (List.length out);
  Alcotest.(check string) "oversized reported" "frame"
    (jstr (List.nth out 0) "error");
  Alcotest.(check bool) "session continues" true (jok (List.nth out 1))

let test_truncated_eof () =
  let s = mk_server () in
  let out = read_all (Server.serve_string s "10\n{\"op\"") in
  Alcotest.(check int) "one error frame" 1 (List.length out);
  Alcotest.(check string) "frame error code" "frame"
    (jstr (List.hd out) "error")

let test_cache_lru () =
  let s = mk_server ~capacity:2 () in
  let q2 = "R(?x), S(?x,?y)" and q3 = "R(?x)" in
  let reqs =
    [
      eval_req (); eval_req ();  (* miss, hit *)
      eval_req ~query:q2 ();  (* miss: {q1,q2} *)
      eval_req ~query:q3 ();  (* miss, evicts q1: {q2,q3} *)
      eval_req ();  (* miss again, evicts q2 *)
    ]
  in
  let out = read_all (Server.serve_string s (session reqs)) in
  let statuses = List.map (fun p -> jstr p "cache") out in
  Alcotest.(check (list string)) "hit/miss sequence"
    [ "miss"; "hit"; "miss"; "miss"; "miss" ] statuses;
  Alcotest.(check int) "hits" 1 (Server.cache_hits s);
  Alcotest.(check int) "misses" 4 (Server.cache_misses s);
  Alcotest.(check int) "evictions" 2 (Server.cache_evictions s);
  Alcotest.(check int) "bounded" 2 (Server.cached_engines s)

let test_delta_path () =
  let s = mk_server () in
  let reqs =
    [
      eval_req ();
      "{\"op\":\"insert\",\"db\":\"d\",\"fact\":\"T(4)\"}";
      "{\"op\":\"insert\",\"db\":\"d\",\"fact\":\"S(1,4)\",\"kind\":\"exo\"}";
      eval_req ();
      "{\"op\":\"delete\",\"db\":\"d\",\"fact\":\"T(4)\"}";
      "{\"op\":\"delete\",\"db\":\"d\",\"fact\":\"S(1,4)\"}";
      eval_req ();
    ]
  in
  let out = read_all (Server.serve_string s (session reqs)) in
  let e0 = List.nth out 0 and e1 = List.nth out 3 and e2 = List.nth out 6 in
  Alcotest.(check string) "first is a miss" "miss" (jstr e0 "cache");
  Alcotest.(check string) "after inserts: delta" "delta" (jstr e1 "cache");
  Alcotest.(check string) "after deletes: delta" "delta" (jstr e2 "cache");
  Alcotest.(check int) "four delta updates" 4 (Server.delta_updates s);
  Alcotest.(check int) "no recompile" 1 (Server.cache_misses s);
  (* the insert/delete pair cancels: answers return to the original *)
  Alcotest.(check bool) "roundtrip values" true
    (values_equal (jvalues e0) (jvalues e2));
  let base = Db_text.parse db_text in
  let mid =
    Database.add_exo (Db_text.parse_fact "S(1,4)")
      (Database.add_endo (Db_text.parse_fact "T(4)") base)
  in
  Alcotest.(check bool) "delta values = cold values" true
    (values_equal (jvalues e1) (expected_values mid))

let test_journal_overflow_recompiles () =
  let s = mk_server ~journal_limit:2 () in
  let ins c = Printf.sprintf "{\"op\":\"insert\",\"db\":\"d\",\"fact\":\"T(%d)\"}" c in
  let reqs = [ eval_req (); ins 4; ins 5; ins 6; eval_req () ] in
  let out = read_all (Server.serve_string s (session reqs)) in
  Alcotest.(check string) "stale past the journal: miss" "miss"
    (jstr (List.nth out 4) "cache");
  Alcotest.(check int) "two cold compiles" 2 (Server.cache_misses s);
  Alcotest.(check int) "no deltas" 0 (Server.delta_updates s)

let test_load_db_invalidates () =
  let s = mk_server () in
  let reqs =
    [
      eval_req ();
      Printf.sprintf "{\"op\":\"load_db\",\"name\":\"d\",\"text\":%S}"
        "endo R(1)\nendo S(1,2)\nendo T(2)\n";
      eval_req ();
    ]
  in
  let out = read_all (Server.serve_string s (session reqs)) in
  Alcotest.(check string) "reload forces a cold recompile" "miss"
    (jstr (List.nth out 2) "cache");
  Alcotest.(check bool) "values describe the new database" true
    (values_equal
       (jvalues (List.nth out 2))
       (expected_values (Db_text.parse "endo R(1)\nendo S(1,2)\nendo T(2)\n")))

let test_shutdown_stops () =
  let s = mk_server () in
  let wire = session [ "{\"op\":\"shutdown\"}"; "{\"op\":\"ping\"}" ] in
  let out = read_all (Server.serve_string s wire) in
  Alcotest.(check int) "nothing served past shutdown" 1 (List.length out);
  Alcotest.(check string) "ack" "shutdown" (jstr (List.hd out) "op")

(* ------------------------------------------------------------------ *)
(* Byte-mangling fuzz                                                  *)
(* ------------------------------------------------------------------ *)

let mangle m ~of_:base =
  match m with
  | `Truncate pos -> String.sub base 0 (min pos (String.length base))
  | `Flip (pos, byte) ->
    String.mapi (fun i c -> if i = pos mod String.length base then byte else c)
      base

let mangle_gen base =
  QCheck2.Gen.(
    let pos = 0 -- (String.length base - 1) in
    oneof
      [
        map (fun p -> `Truncate p) pos;
        map2 (fun p b -> `Flip (p, b)) pos (map Char.chr (int_range 0 255));
      ])

let readonly_session =
  session
    [
      "{\"op\":\"ping\",\"id\":1}";
      eval_req ();
      eval_req ~backend:"circuit" ();
      "{\"op\":\"stats\"}";
    ]

(* Mangling a read-only session cannot touch db state: the server must
   emit only well-formed frames, never raise, and a pristine follow-up
   eval answers exactly what a cold engine does. *)
let fuzz_mangled_readonly =
  Test_util.qcheck ~count:300 "mangled read-only sessions stay exact"
    (mangle_gen readonly_session)
    (fun m ->
       let s = mk_server () in
       let out = Server.serve_string s (mangle m ~of_:readonly_session) in
       let _ = read_all out in
       match read_all (Server.serve_string s (session [ eval_req () ])) with
       | [ resp ] ->
         jok resp
         && values_equal (jvalues resp)
              (expected_values (Db_text.parse db_text))
       | _ -> false)

let mutating_session =
  session
    [
      eval_req ();
      "{\"op\":\"insert\",\"db\":\"d\",\"fact\":\"T(4)\"}";
      eval_req ~backend:"circuit" ();
      "{\"op\":\"delete\",\"db\":\"d\",\"fact\":\"T(4)\"}";
      "{\"op\":\"stats\"}";
    ]

(* A mangled mutating session may leave db "d" in any prefix state; a
   reload pins it back down, after which cached engines must miss and
   answer exactly — garbage never wedges the cache. *)
let fuzz_mangled_mutating =
  Test_util.qcheck ~count:300 "mangled mutating sessions never wedge the cache"
    (mangle_gen mutating_session)
    (fun m ->
       let s = mk_server () in
       let out = Server.serve_string s (mangle m ~of_:mutating_session) in
       let _ = read_all out in
       let follow =
         session
           [
             Printf.sprintf "{\"op\":\"load_db\",\"name\":\"d\",\"text\":%S}"
               db_text;
             eval_req ();
           ]
       in
       match read_all (Server.serve_string s follow) with
       | [ loaded; resp ] ->
         jok loaded && jok resp
         && values_equal (jvalues resp)
              (expected_values (Db_text.parse db_text))
       | _ -> false)

let suite =
  [
    diff_test "conditioning, jobs 1" ~backend:`Conditioning ~jobs:1;
    diff_test "conditioning, jobs 4" ~backend:`Conditioning ~jobs:4;
    diff_test "circuit" ~backend:`Circuit ~jobs:1;
    diff_test "hybrid sample, exact" ~backend:exact_sample ~jobs:1;
    Alcotest.test_case "exhaustive single-delta sweep" `Slow
      test_exhaustive_single_deltas;
    Alcotest.test_case "update keeps the old engine intact" `Quick
      test_update_persistence;
    Alcotest.test_case "update validates presence" `Quick
      test_update_validation;
    frame_roundtrip;
    Alcotest.test_case "frame negative cases" `Quick test_frame_negative;
    frame_read_total;
    Alcotest.test_case "protocol errors are structured" `Quick
      test_protocol_errors;
    Alcotest.test_case "malformed frame is fatal" `Quick
      test_frame_error_fatal;
    Alcotest.test_case "oversized frame is recoverable" `Quick
      test_oversized_recoverable;
    Alcotest.test_case "truncated frame reports eof" `Quick
      test_truncated_eof;
    Alcotest.test_case "lru cache counters" `Quick test_cache_lru;
    Alcotest.test_case "delta update path" `Quick test_delta_path;
    Alcotest.test_case "journal overflow recompiles cold" `Quick
      test_journal_overflow_recompiles;
    Alcotest.test_case "load_db invalidates entries" `Quick
      test_load_db_invalidates;
    Alcotest.test_case "shutdown stops the loop" `Quick test_shutdown_stops;
    fuzz_mangled_readonly;
    fuzz_mangled_mutating;
  ]
