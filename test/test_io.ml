open Test_util

let test_db_parse () =
  let text = {|
# a small database
endo R(a,b)
endo S(b)      # trailing comment
exo  T(b,c)
|} in
  let db = Db_text.parse text in
  Alcotest.(check int) "two endo" 2 (Database.size_endo db);
  Alcotest.(check bool) "exo fact" true (Database.mem_exo (fact "T" [ "b"; "c" ]) db)

let test_db_parse_errors () =
  Alcotest.check_raises "bad tag"
    (Invalid_argument "Db_text.parse: line 1: expected 'endo FACT' or 'exo FACT'") (fun () ->
        ignore (Db_text.parse "both R(a)"));
  Alcotest.check_raises "missing parens"
    (Invalid_argument "Db_text.parse_fact: missing '(' in R") (fun () ->
        ignore (Db_text.parse "endo R"));
  Alcotest.check_raises "empty argument"
    (Invalid_argument "Db_text.parse_fact: empty argument in R(a,)") (fun () ->
        ignore (Db_text.parse_fact "R(a,)"))

let test_db_parse_tabs_and_nullary () =
  (* tab-separated tags and nullary facts are accepted *)
  let db = Db_text.parse "endo\tR(a)\nexo\tS()\nendo P()\n" in
  Alcotest.(check int) "two endo" 2 (Database.size_endo db);
  Alcotest.(check bool) "tab endo" true (Database.mem_endo (fact "R" [ "a" ]) db);
  Alcotest.(check bool) "nullary exo" true (Database.mem_exo (fact "S" []) db);
  Alcotest.(check bool) "nullary endo" true (Database.mem_endo (fact "P" []) db);
  Alcotest.(check string) "nullary prints" "P()" (Fact.to_string (Db_text.parse_fact "P()"));
  Alcotest.check_raises "missing relation name"
    (Invalid_argument "Db_text.parse_fact: missing relation name in (a)") (fun () ->
        ignore (Db_text.parse_fact "(a)"))

let test_db_roundtrip () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "a"; "b" ]; fact "S" [ "x" ] ]
      ~exo:[ fact "T" [ "c" ]; fact "U" [ "d"; "e"; "f" ] ]
  in
  Alcotest.(check bool) "roundtrip" true (Database.equal db (Db_text.parse (Db_text.to_string db)))

let test_query_roundtrip () =
  List.iter
    (fun s ->
       let q = Query_parse.parse s in
       (* evaluation sanity after parsing *)
       match Query.fresh_support q with
       | Some sup -> Alcotest.(check bool) s true (Query.eval q sup)
       | None -> Alcotest.fail ("no support: " ^ s))
    [
      "R(?x,?y), S(?y,b)";
      "ucq: R(?x) | S(?x,?y)";
      "rpq: (A B* C)(s, t)";
      "crpq: (AB+BA)(?x,a), C(?x,?y)";
      "ucrpq: A(?x,?y) | (BC)(?x,a)";
      "cqneg: R(?x), S(?x,?y), !T(?y)";
    ]

let test_load_file () =
  let path = Filename.temp_file "svc_test" ".db" in
  let oc = open_out path in
  output_string oc "endo R(a)\nexo S(b)\n";
  close_out oc;
  let db = Db_text.load path in
  Sys.remove path;
  Alcotest.(check int) "loaded" 2 (Database.size db)

let suite =
  [
    Alcotest.test_case "database parsing" `Quick test_db_parse;
    Alcotest.test_case "parse errors" `Quick test_db_parse_errors;
    Alcotest.test_case "tabs and nullary facts" `Quick test_db_parse_tabs_and_nullary;
    Alcotest.test_case "database roundtrip" `Quick test_db_roundtrip;
    Alcotest.test_case "query parsing" `Quick test_query_roundtrip;
    Alcotest.test_case "file loading" `Quick test_load_file;
  ]
