open Test_util

(* The paper's main results: Lemmas 4.1, 4.3, 4.4 — FGMC recovered exactly
   through an SVC oracle. *)

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let random_db ~rels seed =
  let r = Workload.rng seed in
  Workload.random_database r ~rels ~consts:[ "1"; "2"; "3" ]
    ~n_endo:(1 + Workload.int r 4)
    ~n_exo:(Workload.int r 3)

let test_lemma41_qrst () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "T" [ "3" ] ]
  in
  let svc = Oracle.svc_of qrst in
  (match Fgmc_to_svc.lemma41_auto ~svc ~query:qrst db with
   | Some poly ->
     check_zpoly "recovered" (Model_counting.fgmc_polynomial_brute qrst db) poly;
     (* n+1 constructions, one oracle call each *)
     Alcotest.(check int) "n+1 oracle calls" (Database.size_endo db + 1) (Oracle.calls svc)
   | None -> Alcotest.fail "expected witness")

let test_lemma41_trivial_case () =
  (* Dₓ ⊨ q: binomial counts, no oracle calls at all *)
  let db =
    Database.make ~endo:[ fact "R" [ "9" ]; fact "R" [ "8" ] ]
      ~exo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ]
  in
  let svc = Oracle.svc_of qrst in
  (match Fgmc_to_svc.lemma41_auto ~svc ~query:qrst db with
   | Some poly ->
     check_zpoly "binomial"
       (Poly.Z.of_coeffs [ Bigint.one; Bigint.of_int 2; Bigint.one ])
       poly;
     Alcotest.(check int) "no oracle calls" 0 (Oracle.calls svc)
   | None -> Alcotest.fail "expected result")

let test_lemma41_constant_clash () =
  (* database reusing the support's would-be constants: the engine must
     rename the input database away *)
  Term.reset_fresh ();
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let support = Option.get (Query.fresh_support q) in
  let pivot = Term.Sset.min_elt (Fact.Set.consts support) in
  (* craft a database that uses the support's own constants *)
  let clash_const = Term.Sset.max_elt (Fact.Set.consts support) in
  let db =
    Database.make
      ~endo:[ fact "R" [ clash_const ]; fact "S" [ clash_const; "z" ] ]
      ~exo:[]
  in
  let svc = Oracle.svc_of q in
  let poly = Fgmc_to_svc.lemma41 ~svc ~query:q ~island:support ~pivot db in
  check_zpoly "clash handled" (Model_counting.fgmc_polynomial_brute q db) poly

let test_lemma41_rpq () =
  let rq = Query_parse.parse "rpq: (ABC)(s,t)" in
  let db =
    Database.make
      ~endo:[ fact "A" [ "s"; "1" ]; fact "B" [ "1"; "2" ]; fact "C" [ "2"; "t" ];
              fact "B" [ "1"; "4" ]; fact "C" [ "4"; "t" ] ]
      ~exo:[ fact "A" [ "s"; "9" ] ]
  in
  (match rq with
   | Query.Rpq r ->
     (match Pseudo_connected.rpq r with
      | Some w ->
        let svc = Oracle.svc_of rq in
        let poly =
          Fgmc_to_svc.lemma41 ~svc ~query:rq ~island:w.Pseudo_connected.island
            ~pivot:w.Pseudo_connected.pivot db
        in
        check_zpoly "RPQ recovered" (Model_counting.fgmc_polynomial_brute rq db) poly
      | None -> Alcotest.fail "expected Lemma B.1 witness")
   | _ -> assert false)

let test_lemma41_ucq () =
  let q = Query_parse.parse "ucq: R(?x), S(?x,?y) | S(?x,?y), T(?y)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ]
      ~exo:[]
  in
  let svc = Oracle.svc_of q in
  match Fgmc_to_svc.lemma41_auto ~svc ~query:q db with
  | Some poly -> check_zpoly "UCQ recovered" (Model_counting.fgmc_polynomial_brute q db) poly
  | None -> Alcotest.fail "expected witness"

let test_lemma41_duplicable_singleton () =
  (* A(x) ∨ q with q = RST: pseudo-connected via Corollary 4.4 *)
  let q = Query_parse.parse "ucq: A(?x) | R(?x), S(?x,?y), T(?y)" in
  (match Pseudo_connected.duplicable_singleton q with
   | Some w ->
     Alcotest.(check int) "singleton island" 1 (Fact.Set.cardinal w.Pseudo_connected.island);
     let db =
       Database.make
         ~endo:[ fact "A" [ "7" ]; fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ]
         ~exo:[]
     in
     let svc = Oracle.svc_of q in
     let poly =
       Fgmc_to_svc.lemma41 ~svc ~query:q ~island:w.Pseudo_connected.island
         ~pivot:w.Pseudo_connected.pivot db
     in
     check_zpoly "Cor 4.4 recovered" (Model_counting.fgmc_polynomial_brute q db) poly
   | None -> Alcotest.fail "expected duplicable singleton")

let test_lemma43 () =
  let q = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
  let q' = Query_parse.parse "U(?u,?v)" in
  let qand = Query.And (q, q') in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "U" [ "7"; "8" ] ]
      ~exo:[ fact "R" [ "5" ] ]
  in
  let svc = Oracle.svc_of qand in
  let poly = Fgmc_to_svc.lemma43 ~svc ~q ~q' db in
  check_zpoly "Lemma 4.3" (Model_counting.fgmc_polynomial_brute q db) poly

let test_lemma43_hypothesis_2a () =
  (* S′ ⊨ q must be rejected *)
  let q = Query_parse.parse "R(?x)" in
  let q' = Query_parse.parse "R(?x), S(?x)" in
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  Alcotest.check_raises "2a violated"
    (Invalid_argument "Fgmc_to_svc.lemma43: hypothesis (2a) violated: S′ ⊨ q") (fun () ->
        ignore (Fgmc_to_svc.lemma43 ~svc:(Oracle.svc_of q) ~q ~q' db))

let test_lemma44 () =
  let q1 = Query_parse.parse "R(?x), S(?x,?y)" in
  let q2 = Query_parse.parse "T(?u), U(?u,?v)" in
  let qand = Query.And (q1, q2) in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "a" ]; fact "U" [ "a"; "b" ];
              fact "U" [ "a"; "c" ]; fact "W" [ "z" ] ]
      ~exo:[ fact "S" [ "1"; "9" ] ]
  in
  let svc = Oracle.svc_of qand in
  let poly = Fgmc_to_svc.lemma44 ~svc ~q1 ~q2 db in
  check_zpoly "Lemma 4.4" (Model_counting.fgmc_polynomial_brute qand db) poly

let test_lemma44_vocab_guard () =
  let q1 = Query_parse.parse "R(?x)" in
  let q2 = Query_parse.parse "R(?y), S(?y)" in
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Fgmc_to_svc.lemma44: conjunct vocabularies overlap; provide ~split")
    (fun () ->
       ignore (Fgmc_to_svc.lemma44 ~svc:(Oracle.svc_of (Query.And (q1, q2))) ~q1 ~q2 db))

let test_engine_pivot_guards () =
  let q = Query_parse.parse "R(?x)" in
  let support = facts [ fact "R" [ "c1" ] ] in
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  Alcotest.check_raises "pivot not in support"
    (Invalid_argument "Fgmc_to_svc: pivot does not occur in the support") (fun () ->
        ignore
          (Fgmc_to_svc.reduce_engine ~svc:(Oracle.svc_of q) ~count_query:q
             ~query_consts:Term.Sset.empty ~s_prime:Fact.Set.empty ~support ~pivot:"zz"
             ~mode:Fgmc_to_svc.Count db));
  Alcotest.check_raises "empty support" (Invalid_argument "Fgmc_to_svc: empty support")
    (fun () ->
       ignore
         (Fgmc_to_svc.reduce_engine ~svc:(Oracle.svc_of q) ~count_query:q
            ~query_consts:Term.Sset.empty ~s_prime:Fact.Set.empty ~support:Fact.Set.empty
            ~pivot:"zz" ~mode:Fgmc_to_svc.Count db))

let prop_lemma41_random =
  qcheck ~count:25 "Lemma 4.1 on random q_RST instances"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let db = random_db ~rels:[ ("R", 1); ("S", 2); ("T", 1) ] seed in
       match Fgmc_to_svc.lemma41_auto ~svc:(Oracle.svc_of qrst) ~query:qrst db with
       | Some poly -> Poly.Z.equal poly (Model_counting.fgmc_polynomial qrst db)
       | None -> false)

let prop_lemma41_random_sjf2 =
  qcheck ~count:25 "Lemma 4.1 on random R-S instances"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q = Query_parse.parse "R(?x,?y), S(?y,?z)" in
       let db = random_db ~rels:[ ("R", 2); ("S", 2) ] seed in
       match Fgmc_to_svc.lemma41_auto ~svc:(Oracle.svc_of q) ~query:q db with
       | Some poly -> Poly.Z.equal poly (Model_counting.fgmc_polynomial q db)
       | None -> false)

let prop_lemma44_random =
  qcheck ~count:20 "Lemma 4.4 on random decomposable instances"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q1 = Query_parse.parse "R(?x), S(?x,?y)" in
       let q2 = Query_parse.parse "T(?u,?v)" in
       let qand = Query.And (q1, q2) in
       let db = random_db ~rels:[ ("R", 1); ("S", 2); ("T", 2) ] seed in
       Poly.Z.equal
         (Fgmc_to_svc.lemma44 ~svc:(Oracle.svc_of qand) ~q1 ~q2 db)
         (Model_counting.fgmc_polynomial qand db))

let prop_lemma43_random =
  qcheck ~count:20 "Lemma 4.3 on random instances" QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q = qrst in
       let q' = Query_parse.parse "U(?u,?v)" in
       let qand = Query.And (q, q') in
       let db = random_db ~rels:[ ("R", 1); ("S", 2); ("T", 1); ("U", 2) ] seed in
       Poly.Z.equal
         (Fgmc_to_svc.lemma43 ~svc:(Oracle.svc_of qand) ~q ~q' db)
         (Model_counting.fgmc_polynomial q db))

(* structurally random connected constant-free sjf-CQs: build a random tree
   over k variables, one binary atom per edge, plus unary atoms on random
   variables — connected by construction *)
let random_connected_cq r =
  let nvars = 2 + Workload.int r 2 in
  let var i = Term.var (Printf.sprintf "v%d" i) in
  let edges =
    List.init (nvars - 1) (fun i ->
        let parent = Workload.int r (i + 1) in
        Atom.make (Printf.sprintf "E%d" i) [ var parent; var (i + 1) ])
  in
  let unary =
    List.init (Workload.int r 2) (fun i ->
        Atom.make (Printf.sprintf "U%d" i) [ var (Workload.int r nvars) ])
  in
  Cq.of_atoms (edges @ unary)

let prop_lemma41_random_queries =
  qcheck ~count:15 "Lemma 4.1 on structurally random connected queries"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let cq = random_connected_cq r in
       let q = Query.Cq cq in
       (* a random database over the query's own schema *)
       let rels =
         List.map (fun a -> (Atom.rel a, Atom.arity a)) (Cq.atoms cq)
       in
       let db =
         Workload.random_database r ~rels ~consts:[ "1"; "2" ]
           ~n_endo:(1 + Workload.int r 4)
           ~n_exo:(Workload.int r 2)
       in
       match Fgmc_to_svc.lemma41_auto ~svc:(Oracle.svc_of q) ~query:q db with
       | Some poly -> Poly.Z.equal poly (Model_counting.fgmc_polynomial_brute q db)
       | None -> false)

let suite =
  [
    Alcotest.test_case "Lemma 4.1: q_RST" `Quick test_lemma41_qrst;
    prop_lemma41_random_queries;
    Alcotest.test_case "Lemma 4.1: trivial case" `Quick test_lemma41_trivial_case;
    Alcotest.test_case "Lemma 4.1: constant clash" `Quick test_lemma41_constant_clash;
    Alcotest.test_case "Lemma 4.1: RPQ (Lemma B.1)" `Quick test_lemma41_rpq;
    Alcotest.test_case "Lemma 4.1: UCQ" `Quick test_lemma41_ucq;
    Alcotest.test_case "Corollary 4.4: duplicable singleton" `Quick test_lemma41_duplicable_singleton;
    Alcotest.test_case "Lemma 4.3" `Quick test_lemma43;
    Alcotest.test_case "Lemma 4.3: hypothesis 2a" `Quick test_lemma43_hypothesis_2a;
    Alcotest.test_case "Lemma 4.4" `Quick test_lemma44;
    Alcotest.test_case "Lemma 4.4: vocabulary guard" `Quick test_lemma44_vocab_guard;
    Alcotest.test_case "engine guards" `Quick test_engine_pivot_guards;
    prop_lemma41_random;
    prop_lemma41_random_sjf2;
    prop_lemma44_random;
    prop_lemma43_random;
  ]
