open Test_util

let parse = Regex.parse

let test_parse () =
  Alcotest.(check bool) "juxtaposition" true
    (Regex.equal (parse "AB") (Regex.seq (Regex.sym "A") (Regex.sym "B")));
  Alcotest.(check bool) "alternation binds loosest" true
    (Regex.equal (parse "AB+C")
       (Regex.alt (Regex.seq (Regex.sym "A") (Regex.sym "B")) (Regex.sym "C")));
  Alcotest.(check bool) "star binds tightest" true
    (Regex.equal (parse "AB*") (Regex.seq (Regex.sym "A") (Regex.star (Regex.sym "B"))));
  Alcotest.(check bool) "parens" true
    (Regex.equal (parse "(AB)*") (Regex.star (Regex.seq (Regex.sym "A") (Regex.sym "B"))));
  Alcotest.(check bool) "quoted names" true
    (Regex.equal (parse "'Publication'") (Regex.sym "Publication"));
  Alcotest.(check bool) "numbered symbol" true
    (Regex.equal (parse "R1 R2") (Regex.seq (Regex.sym "R1") (Regex.sym "R2")));
  Alcotest.(check bool) "option" true (Regex.nullable (parse "A?"));
  Alcotest.check_raises "unbalanced" (Invalid_argument "Regex.parse: missing closing parenthesis")
    (fun () -> ignore (parse "(AB"))

let test_print_parse_roundtrip () =
  List.iter
    (fun s ->
       let r = parse s in
       Alcotest.(check bool) s true (Regex.equal (parse (Regex.to_string r)) r))
    [ "AB+BA"; "A(B+C)*D"; "AB*C"; "(A+B)(C+D)"; "A?B"; "'Long'A" ]

let test_nullable_empty () =
  Alcotest.(check bool) "A* nullable" true (Regex.nullable (parse "A*"));
  Alcotest.(check bool) "A not nullable" false (Regex.nullable (parse "A"));
  Alcotest.(check bool) "AB* not nullable" false (Regex.nullable (parse "AB*"));
  Alcotest.(check bool) "empty lang" true (Regex.is_empty_lang Regex.empty);
  Alcotest.(check bool) "A* not empty" false (Regex.is_empty_lang (parse "A*"))

let test_nfa_membership () =
  let nfa = Nfa.of_regex (parse "A B* C") in
  let accepts w = Nfa.accepts nfa w in
  Alcotest.(check bool) "AC" true (accepts [ "A"; "C" ]);
  Alcotest.(check bool) "ABC" true (accepts [ "A"; "B"; "C" ]);
  Alcotest.(check bool) "ABBBC" true (accepts [ "A"; "B"; "B"; "B"; "C" ]);
  Alcotest.(check bool) "A" false (accepts [ "A" ]);
  Alcotest.(check bool) "empty" false (accepts []);
  Alcotest.(check bool) "CB" false (accepts [ "C"; "B" ])

let test_dfa_agrees_with_nfa () =
  let exprs = [ "A B* C"; "AB+BA"; "(A+B)*A"; "A?B?C?"; "A(BA)*" ] in
  let words =
    [ []; [ "A" ]; [ "B" ]; [ "C" ]; [ "A"; "B" ]; [ "B"; "A" ]; [ "A"; "C" ];
      [ "A"; "B"; "A" ]; [ "A"; "B"; "C" ]; [ "B"; "A"; "B"; "A" ];
      [ "A"; "A" ]; [ "C"; "C"; "C" ] ]
  in
  List.iter
    (fun e ->
       let r = parse e in
       let nfa = Nfa.of_regex r and dfa = Dfa.of_regex r in
       List.iter
         (fun w ->
            Alcotest.(check bool)
              (Printf.sprintf "%s on %s" e (String.concat "" w))
              (Nfa.accepts nfa w) (Dfa.accepts dfa w))
         words)
    exprs

let test_shortest () =
  Alcotest.(check (option int)) "ABC" (Some 3) (Words.shortest_length (parse "ABC"));
  Alcotest.(check (option int)) "A*" (Some 0) (Words.shortest_length (parse "A*"));
  Alcotest.(check (option int)) "AB*C" (Some 2) (Words.shortest_length (parse "AB*C"));
  Alcotest.(check (option int)) "empty" None (Words.shortest_length Regex.empty);
  Alcotest.(check (option (list string))) "witness" (Some [ "A"; "C" ])
    (Words.shortest_word (parse "AB*C"))

let test_exists_length () =
  let r = parse "A(BB)*C" in
  Alcotest.(check bool) "length 2" true (Words.exists_length r 2);
  Alcotest.(check bool) "length 3" false (Words.exists_length r 3);
  Alcotest.(check bool) "length 4" true (Words.exists_length r 4);
  Alcotest.(check bool) "length 0 of A*" true (Words.exists_length (parse "A*") 0);
  Alcotest.(check bool) "negative" false (Words.exists_length r (-1))

let test_exists_length_geq () =
  Alcotest.(check bool) "A+B ≥ 2" false (Words.exists_length_geq (parse "A+B") 2);
  Alcotest.(check bool) "AB+BA ≥ 2" true (Words.exists_length_geq (parse "AB+BA") 2);
  Alcotest.(check bool) "AB+BA ≥ 3" false (Words.exists_length_geq (parse "AB+BA") 3);
  Alcotest.(check bool) "AB*C ≥ 1000" true (Words.exists_length_geq (parse "AB*C") 1000);
  Alcotest.(check bool) "∅ ≥ 0" false (Words.exists_length_geq Regex.empty 0)

let test_length_profile () =
  Alcotest.(check bool) "bounded" true (Words.length_profile (parse "AB+C") = Words.Bounded 2);
  Alcotest.(check bool) "unbounded" true (Words.length_profile (parse "AB*") = Words.Unbounded);
  Alcotest.(check bool) "empty" true (Words.length_profile Regex.empty = Words.Empty_language);
  Alcotest.(check bool) "eps" true (Words.length_profile Regex.eps = Words.Bounded 0);
  Alcotest.(check bool) "finite" true (Words.is_finite (parse "(A+B)(C+D)"));
  Alcotest.(check bool) "infinite" false (Words.is_finite (parse "(AB)*C"))

let test_words_of_length () =
  let ws = Words.words_of_length (parse "(A+B)(A+B)") 2 in
  Alcotest.(check int) "4 words" 4 (List.length ws);
  let ws3 = Words.words_of_length (parse "A*") 3 in
  Alcotest.(check (list (list string))) "AAA" [ [ "A"; "A"; "A" ] ] ws3;
  Alcotest.(check int) "none of wrong length" 0
    (List.length (Words.words_of_length (parse "AB") 3));
  (* every enumerated word is accepted *)
  let r = parse "A(B+C)*D" in
  let nfa = Nfa.of_regex r in
  List.iter
    (fun w -> Alcotest.(check bool) "accepted" true (Nfa.accepts nfa w))
    (Words.words_of_length r 4)

let test_some_word_geq () =
  (match Words.some_word_of_length_geq (parse "AB*C") 5 with
   | Some w ->
     Alcotest.(check int) "length ≥ 5" 5 (List.length w);
     Alcotest.(check bool) "accepted" true (Nfa.accepts (Nfa.of_regex (parse "AB*C")) w)
   | None -> Alcotest.fail "expected a word");
  Alcotest.(check bool) "no long word" true (Words.some_word_of_length_geq (parse "AB") 3 = None)

(* random regex generator for agreement properties *)
let arb_regex =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then oneof [ return (Regex.sym "A"); return (Regex.sym "B"); return Regex.eps ]
      else
        oneof
          [
            map2 Regex.seq (self (n / 2)) (self (n / 2));
            map2 Regex.alt (self (n / 2)) (self (n / 2));
            map Regex.star (self (n - 1));
            return (Regex.sym "A");
            return (Regex.sym "B");
          ])

let arb_word = QCheck2.Gen.(list_size (int_range 0 6) (oneofl [ "A"; "B" ]))

let prop_nfa_dfa_agree =
  qcheck ~count:200 "NFA and DFA agree" (QCheck2.Gen.pair arb_regex arb_word)
    (fun (r, w) -> Nfa.accepts (Nfa.of_regex r) w = Dfa.accepts (Dfa.of_regex r) w)

let prop_exists_length_consistent =
  qcheck ~count:100 "exists_length matches enumeration"
    (QCheck2.Gen.pair arb_regex (QCheck2.Gen.int_range 0 4))
    (fun (r, k) -> Words.exists_length r k = (Words.words_of_length r k <> []))

let prop_shortest_is_shortest =
  qcheck ~count:100 "shortest_length is tight" arb_regex (fun r ->
      match Words.shortest_length r with
      | None -> not (Words.exists_length r 0) && not (Words.exists_length r 1)
      | Some l ->
        Words.exists_length r l
        && List.for_all (fun k -> not (Words.exists_length r k)) (List.init l Fun.id))

let suite =
  [
    Alcotest.test_case "regex parsing" `Quick test_parse;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
    Alcotest.test_case "nullable and empty" `Quick test_nullable_empty;
    Alcotest.test_case "NFA membership" `Quick test_nfa_membership;
    Alcotest.test_case "DFA agreement" `Quick test_dfa_agrees_with_nfa;
    Alcotest.test_case "shortest word" `Quick test_shortest;
    Alcotest.test_case "exists_length" `Quick test_exists_length;
    Alcotest.test_case "exists_length_geq" `Quick test_exists_length_geq;
    Alcotest.test_case "length profiles" `Quick test_length_profile;
    Alcotest.test_case "word enumeration" `Quick test_words_of_length;
    Alcotest.test_case "witness of length ≥ k" `Quick test_some_word_geq;
    prop_nfa_dfa_agree;
    prop_exists_length_consistent;
    prop_shortest_is_shortest;
  ]
