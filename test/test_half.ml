open Test_util

(* The MC ≡ PQE(1/2) and GMC ≡ PQE(1/2;1) arrows, plus Cq.instantiate
   (Remark 3.1) and DFA minimization. *)

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let test_pqe_half_known () =
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  let q = Query_parse.parse "R(?x)" in
  check_rational "single fact" Rational.half (Pqe.pqe_half q db);
  Alcotest.check_raises "guard"
    (Invalid_argument "Pqe.pqe_half: database has exogenous facts (use pqe_half_one)")
    (fun () ->
       ignore (Pqe.pqe_half q (Database.make ~endo:[] ~exo:[ fact "R" [ "9" ] ])))

let test_gmc_via_half_one () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "T" [ "3" ] ]
  in
  let pqe = Mc_pqe_half.pqe_half_one_of qrst in
  check_bigint "one call recovers GMC"
    (Model_counting.gmc qrst db)
    (Mc_pqe_half.gmc_via_half_one ~pqe db);
  Alcotest.(check int) "exactly one call" 1 (Oracle.calls pqe);
  let gmc = Mc_pqe_half.gmc_of qrst in
  check_rational "and back"
    (Pqe.pqe_half_one qrst db)
    (Mc_pqe_half.half_one_via_gmc ~gmc db)

let test_mc_via_half_guard () =
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "T" [ "9" ] ] in
  Alcotest.check_raises "mc guard"
    (Invalid_argument "Mc_pqe_half.mc_via_half: database has exogenous facts") (fun () ->
        ignore (Mc_pqe_half.mc_via_half ~pqe:(Mc_pqe_half.pqe_half_one_of qrst) db))

let prop_half_roundtrip =
  qcheck ~count:40 "GMC ≡ PQE(1/2;1) round trip" QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
           ~consts:[ "1"; "2"; "3" ] ~n_endo:(1 + Workload.int r 5) ~n_exo:(Workload.int r 3)
       in
       Bigint.equal
         (Mc_pqe_half.gmc_via_half_one ~pqe:(Mc_pqe_half.pqe_half_one_of qrst) db)
         (Model_counting.gmc qrst db))

let test_instantiate () =
  (* Remark 3.1: bind the "free" variables of a query to an answer tuple *)
  let q = Cq.parse "Author(?a), Wrote(?a,?p)" in
  let bound = Cq.instantiate [ ("a", "alice") ] q in
  Alcotest.(check bool) "constant introduced" true
    (Term.Sset.mem "alice" (Cq.consts bound));
  Alcotest.(check bool) "variable gone" false (Term.Sset.mem "a" (Cq.vars bound));
  let db = facts [ fact "Author" [ "alice" ]; fact "Wrote" [ "alice"; "p1" ] ] in
  Alcotest.(check bool) "bound query satisfied" true (Cq.eval bound db);
  let other = Cq.instantiate [ ("a", "bob") ] q in
  Alcotest.(check bool) "other tuple unsatisfied" false (Cq.eval other db);
  Alcotest.check_raises "unknown variable"
    (Invalid_argument "Cq.instantiate: no variable zz in the query") (fun () ->
        ignore (Cq.instantiate [ ("zz", "x") ] q))

let test_instantiate_svc () =
  (* the Remark's point: SVC for the non-Boolean query with answer tuple
     (alice) is SVC of the instantiated Boolean query with constants *)
  let q = Cq.parse "Wrote(?a,?p), Cites(?p,?q)" in
  let bound = Query.Cq (Cq.instantiate [ ("a", "alice") ] q) in
  let db =
    Database.make
      ~endo:[ fact "Wrote" [ "alice"; "p1" ]; fact "Cites" [ "p1"; "p2" ];
              fact "Wrote" [ "bob"; "p3" ]; fact "Cites" [ "p3"; "p2" ] ]
      ~exo:[]
  in
  let values = Svc.svc_all bound db in
  let v f = List.assoc f values in
  check_rational "alice's facts contribute" Rational.half (v (fact "Wrote" [ "alice"; "p1" ]));
  check_rational "bob's facts do not" Rational.zero (v (fact "Wrote" [ "bob"; "p3" ]))

let test_dfa_minimize () =
  (* (A+B)*A B? has redundant Thompson states; minimization shrinks and
     preserves the language *)
  List.iter
    (fun l ->
       let d = Dfa.of_regex (Regex.parse l) in
       let m = Dfa.minimize d in
       Alcotest.(check bool) (l ^ " minimized no larger") true
         (Dfa.num_states m <= Dfa.num_states d);
       Alcotest.(check bool) (l ^ " equivalent") true (Dfa.equivalent d m))
    [ "A"; "AB+BA"; "(A+B)*A"; "A?B?"; "A(BA)*B" ];
  (* structurally different but equal languages *)
  let d1 = Dfa.of_regex (Regex.parse "(A+B)*") in
  let d2 = Dfa.of_regex (Regex.parse "(A*B*)*") in
  Alcotest.(check bool) "language equality detected" true (Dfa.equivalent d1 d2);
  Alcotest.(check bool) "inequality detected" false
    (Dfa.equivalent d1 (Dfa.of_regex (Regex.parse "A*")))

let prop_minimize_preserves =
  let arb_regex =
    let open QCheck2.Gen in
    (* keep expressions small: subset construction is exponential in the
       worst case *)
    int_range 0 6 >>= fix (fun self n ->
        if n <= 0 then oneofl [ Regex.sym "A"; Regex.sym "B"; Regex.eps ]
        else
          oneof
            [ map2 Regex.seq (self (n / 2)) (self (n / 2));
              map2 Regex.alt (self (n / 2)) (self (n / 2));
              map Regex.star (self (n - 1)) ])
  in
  qcheck ~count:100 "minimize preserves the language" arb_regex (fun r ->
      let d = Dfa.of_regex r in
      Dfa.equivalent d (Dfa.minimize d))

let suite =
  [
    Alcotest.test_case "PQE(1/2) values" `Quick test_pqe_half_known;
    Alcotest.test_case "GMC ≡ PQE(1/2;1)" `Quick test_gmc_via_half_one;
    Alcotest.test_case "MC guard" `Quick test_mc_via_half_guard;
    Alcotest.test_case "Remark 3.1: instantiate" `Quick test_instantiate;
    Alcotest.test_case "Remark 3.1: SVC of an answer tuple" `Quick test_instantiate_svc;
    Alcotest.test_case "DFA minimization" `Quick test_dfa_minimize;
    prop_half_roundtrip;
    prop_minimize_preserves;
  ]
