open Test_util

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let test_svc_single_support () =
  (* all three facts necessary: each contributes 1/3 *)
  let db =
    Database.make ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ] ~exo:[]
  in
  List.iter
    (fun f ->
       check_rational (Fact.to_string f) (Rational.of_ints 1 3) (Svc.svc qrst db f))
    (Database.endo_list db)

let test_svc_with_exogenous () =
  (* R and T exogenous: S(1,2) is the only player and a singleton support *)
  let db =
    Database.make ~endo:[ fact "S" [ "1"; "2" ] ] ~exo:[ fact "R" [ "1" ]; fact "T" [ "2" ] ]
  in
  check_rational "sole contributor" Rational.one (Svc.svc qrst db (fact "S" [ "1"; "2" ]))

let test_svc_zero_for_irrelevant () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "R" [ "99" ] ]
      ~exo:[]
  in
  check_rational "irrelevant fact" Rational.zero (Svc.svc qrst db (fact "R" [ "99" ]))

let test_svc_guards () =
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "T" [ "2" ] ] in
  Alcotest.check_raises "not endogenous" (Invalid_argument "Svc.svc: fact is not endogenous")
    (fun () -> ignore (Svc.svc qrst db (fact "T" [ "2" ])));
  Alcotest.check_raises "brute guard" (Invalid_argument "Svc.svc_brute: fact is not endogenous")
    (fun () -> ignore (Svc.svc_brute qrst db (fact "T" [ "2" ])))

let test_svc_efficiency () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "S" [ "1"; "3" ];
              fact "T" [ "3" ] ]
      ~exo:[]
  in
  let total =
    List.fold_left (fun acc (_, v) -> Rational.add acc v) Rational.zero (Svc.svc_all qrst db)
  in
  check_rational "sum of values = 1" Rational.one total

let test_max_svc () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "S" [ "1"; "3" ];
              fact "T" [ "3" ] ]
      ~exo:[]
  in
  (match (Max_svc.max_svc qrst db, Max_svc.max_svc_brute qrst db) with
   | Some (f1, v1), Some (_, v2) ->
     check_rational "agree" v1 v2;
     (* R(1) is in every support: it must be a top contributor *)
     Alcotest.(check bool) "R(1) among top" true
       (List.exists
          (fun (f, _) -> Fact.equal f (fact "R" [ "1" ]))
          (Max_svc.top_contributors qrst db));
     ignore f1
   | _ -> Alcotest.fail "expected values");
  Alcotest.(check bool) "empty database" true
    (Max_svc.max_svc qrst (Database.make ~endo:[] ~exo:[]) = None)

let test_const_svc_bibliography () =
  (* the paper's §6.4 example: author expertise on 'Shapley' papers *)
  let qstar = Query_parse.parse "Publication(?x,?y), Keyword(?y,shapley)" in
  let fs =
    facts
      [ fact "Publication" [ "alice"; "p1" ]; fact "Publication" [ "bob"; "p1" ];
        fact "Publication" [ "alice"; "p2" ]; fact "Keyword" [ "p1"; "shapley" ];
        fact "Keyword" [ "p2"; "shapley" ]; fact "Publication" [ "carol"; "p3" ];
        fact "Keyword" [ "p3"; "logic" ] ]
  in
  let inst =
    Const_svc.make_instance ~facts:fs
      ~endo_consts:(Term.Sset.of_list [ "alice"; "bob"; "carol" ])
  in
  let values = Const_svc.svc_const_all qstar inst in
  let v name = List.assoc name values in
  check_rational "alice" Rational.half (v "alice");
  check_rational "bob" Rational.half (v "bob");
  check_rational "carol (no shapley paper)" Rational.zero (v "carol");
  Alcotest.check_raises "exogenous constant"
    (Invalid_argument "Const_svc.svc_const: constant is not endogenous") (fun () ->
        ignore (Const_svc.svc_const qstar inst "p1"))

let test_const_counting () =
  let q = Query_parse.parse "R(?x,?y), T(?y,?z)" in
  let fs =
    facts
      [ fact "R" [ "1"; "2" ]; fact "T" [ "2"; "3" ]; fact "R" [ "4"; "2" ];
        fact "T" [ "2"; "5" ] ]
  in
  let inst =
    Const_svc.make_instance ~facts:fs ~endo_consts:(Term.Sset.of_list [ "1"; "2"; "4" ])
  in
  check_zpoly "lineage = brute"
    (Const_svc.fgmc_const_polynomial_brute q inst)
    (Const_svc.fgmc_const_polynomial q inst);
  (* a constant absent from the facts is a null player *)
  let inst_null = Const_svc.make_instance ~facts:fs ~endo_consts:(Term.Sset.of_list [ "1"; "zzz" ]) in
  check_rational "null player" Rational.zero (Const_svc.svc_const q inst_null "zzz");
  (* fmc_const requires all constants endogenous *)
  Alcotest.check_raises "fmc const guard"
    (Invalid_argument "Const_svc.fmc_const_polynomial: instance has exogenous constants")
    (fun () -> ignore (Const_svc.fmc_const_polynomial q inst))

let prop_svc_vs_brute =
  qcheck ~count:40 "SVC via FGMC = brute Eq.2" Gen.seed_gen
    (fun seed ->
       let db = Gen.random_db seed in
       List.for_all
         (fun f -> Rational.equal (Svc.svc qrst db f) (Svc.svc_brute qrst db f))
         (Database.endo_list db))

let prop_const_svc_efficiency =
  qcheck ~count:30 "constants game efficiency" Gen.seed_gen
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_graph r ~labels:[ "R"; "T" ] ~nodes:[ "1"; "2"; "3"; "4" ]
           ~n_endo:5 ~n_exo:0
       in
       let fs = Database.all db in
       if Fact.Set.is_empty fs then true
       else begin
         let all_consts = Fact.Set.consts fs in
         let endo_consts =
           Term.Sset.filter (fun c -> c < "3") all_consts
         in
         if Term.Sset.is_empty endo_consts then true
         else begin
           let inst = Const_svc.make_instance ~facts:fs ~endo_consts in
           let q = Query_parse.parse "R(?x,?y), T(?y,?z)" in
           let vals = Const_svc.svc_const_all q inst in
           let total = List.fold_left (fun a (_, v) -> Rational.add a v) Rational.zero vals in
           (* efficiency: total = v(full) - v(∅) *)
           let full_sat = Query.eval q (Const_svc.induced inst endo_consts) in
           let empty_sat = Query.eval q (Const_svc.induced inst Term.Sset.empty) in
           let expected =
             if empty_sat then Rational.zero
             else if full_sat then Rational.one
             else Rational.zero
           in
           Rational.equal total expected
         end
       end)

let test_banzhaf_counting () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "T" [ "3" ] ]
  in
  List.iter
    (fun f ->
       check_rational (Fact.to_string f) (Svc.banzhaf_brute qrst db f)
         (Svc.banzhaf qrst db f))
    (Database.endo_list db)

let prop_banzhaf_vs_brute =
  qcheck ~count:30 "Banzhaf via GMC = brute" Gen.seed_gen
    (fun seed ->
       let db = Gen.random_db seed in
       List.for_all
         (fun f -> Rational.equal (Svc.banzhaf qrst db f) (Svc.banzhaf_brute qrst db f))
         (Database.endo_list db))

let suite =
  [
    Alcotest.test_case "single-support values" `Quick test_svc_single_support;
    Alcotest.test_case "Banzhaf via counting" `Quick test_banzhaf_counting;
    prop_banzhaf_vs_brute;
    Alcotest.test_case "exogenous completion" `Quick test_svc_with_exogenous;
    Alcotest.test_case "irrelevant fact" `Quick test_svc_zero_for_irrelevant;
    Alcotest.test_case "guards" `Quick test_svc_guards;
    Alcotest.test_case "efficiency" `Quick test_svc_efficiency;
    Alcotest.test_case "max-SVC" `Quick test_max_svc;
    Alcotest.test_case "constants: bibliography (§6.4)" `Quick test_const_svc_bibliography;
    Alcotest.test_case "constants: counting" `Quick test_const_counting;
    prop_svc_vs_brute;
    prop_const_svc_efficiency;
  ]
