open Test_util

(* Section 6: purely endogenous databases, negation, max-SVC, constants. *)

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let test_lemma61_call_count () =
  (* 2^k FMC calls for k exogenous facts, per queried size *)
  let db =
    Database.make ~endo:[ fact "S" [ "1"; "2" ] ]
      ~exo:[ fact "R" [ "1" ]; fact "T" [ "2" ]; fact "T" [ "9" ] ]
  in
  let fmc = Oracle.fgmc_brute_of qrst in
  let v = Endogenous.fgmc_via_fmc ~fmc db 1 in
  check_bigint "count" (Model_counting.fgmc_brute qrst db 1) v;
  Alcotest.(check int) "2^3 calls" 8 (Oracle.calls fmc)

let test_lemma61_oracle_purity () =
  (* the FMC oracle must only ever see purely endogenous databases *)
  let db =
    Database.make ~endo:[ fact "S" [ "1"; "2" ] ] ~exo:[ fact "R" [ "1" ]; fact "T" [ "2" ] ]
  in
  let fmc =
    Oracle.make (fun (db, j) ->
        if not (Fact.Set.is_empty (Database.exo db)) then
          Alcotest.fail "oracle saw exogenous facts";
        Model_counting.fgmc_brute qrst db j)
  in
  check_zpoly "polynomial"
    (Model_counting.fgmc_polynomial_brute qrst db)
    (Endogenous.fgmc_polynomial_via_fmc ~fmc db)

let test_cor61_svc_endo () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[]
  in
  let mu = fact "S" [ "1"; "2" ] in
  check_rational "SVCⁿ via FMC"
    (Svc.svc_brute qrst db mu)
    (Svc_to_fgmc.svc_endo ~fgmc:(Oracle.fgmc_of qrst) db mu);
  let db_exo = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "T" [ "2" ] ] in
  Alcotest.check_raises "guard"
    (Invalid_argument "Svc_to_fgmc.svc_endo: database has exogenous facts") (fun () ->
        ignore (Svc_to_fgmc.svc_endo ~fgmc:(Oracle.fgmc_of qrst) db_exo (fact "R" [ "1" ])))

let test_lemma62_unshared_constant () =
  (* q = R(x) ∧ S(x,y): the canonical support has the y-constant in exactly
     one fact, so S⁰ is a singleton and no exogenous facts are added *)
  Term.reset_fresh ();
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let island = Option.get (Query.fresh_support q) in
  let pivot =
    Term.Sset.min_elt
      (Term.Sset.filter
         (fun c ->
            Fact.Set.cardinal
              (Fact.Set.filter (fun f -> Term.Sset.mem c (Fact.consts f)) island)
            = 1)
         (Fact.Set.consts island))
  in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "R" [ "3" ]; fact "S" [ "3"; "4" ] ]
      ~exo:[]
  in
  (* the endo-only oracle fails the whole test if exogenous facts appear *)
  let svc = Oracle.svc_endo_only (Oracle.svc_brute_of q) in
  let poly = Fgmc_to_svc.lemma41 ~svc ~query:q ~island ~pivot db in
  check_zpoly "Lemma 6.2" (Model_counting.fgmc_polynomial_brute q db) poly

let test_prop62_max_svc () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "T" [ "3" ] ]
  in
  match Max_svc_red.reduce_auto ~max_svc:(Oracle.max_svc_of qrst) ~query:qrst db with
  | Some poly -> check_zpoly "Prop 6.2" (Model_counting.fgmc_polynomial_brute qrst db) poly
  | None -> Alcotest.fail "expected result"

let test_prop62_trivial () =
  let db =
    Database.make ~endo:[ fact "R" [ "9" ] ]
      ~exo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ]
  in
  match Max_svc_red.reduce_auto ~max_svc:(Oracle.max_svc_of qrst) ~query:qrst db with
  | Some poly ->
    check_zpoly "binomial" (Poly.Z.of_coeffs [ Bigint.one; Bigint.one ]) poly
  | None -> Alcotest.fail "expected result"

let test_prop63_forward () =
  let q = Query_parse.parse "R(?x,?y), T(?y,?z)" in
  let fs =
    facts
      [ fact "R" [ "1"; "2" ]; fact "T" [ "2"; "3" ]; fact "R" [ "4"; "2" ]; fact "T" [ "2"; "5" ] ]
  in
  let inst =
    Const_svc.make_instance ~facts:fs ~endo_consts:(Term.Sset.of_list [ "1"; "2"; "4" ])
  in
  let poly =
    Const_red.fgmc_const_via_svc_const ~svc_const:(Oracle.svc_const_of q) ~query:q inst
  in
  check_zpoly "Prop 6.3 →" (Const_svc.fgmc_const_polynomial_brute q inst) poly

let test_prop63_backward () =
  let q = Query_parse.parse "R(?x,?y), T(?y,?z)" in
  let fs = facts [ fact "R" [ "1"; "2" ]; fact "T" [ "2"; "3" ]; fact "R" [ "4"; "2" ] ] in
  let inst =
    Const_svc.make_instance ~facts:fs ~endo_consts:(Term.Sset.of_list [ "1"; "2"; "4" ])
  in
  let fgmc_const = Const_red.fgmc_const_oracle q in
  List.iter
    (fun c ->
       check_rational c
         (Const_svc.svc_const q inst c)
         (Const_red.svc_const_via_fgmc_const ~fgmc_const inst c))
    [ "1"; "2"; "4" ]

let test_prop63_guard () =
  (* query constants must be exogenous *)
  let q = Query_parse.parse "R(a,?x)" in
  let fs = facts [ fact "R" [ "a"; "b" ] ] in
  let inst = Const_svc.make_instance ~facts:fs ~endo_consts:(Term.Sset.of_list [ "a" ]) in
  Alcotest.check_raises "guard"
    (Invalid_argument "Const_red.fgmc_const_via_svc_const: query constants must be exogenous")
    (fun () ->
       ignore
         (Const_red.fgmc_const_via_svc_const ~svc_const:(Oracle.svc_const_of q) ~query:q inst))

let test_prop61_negation () =
  let qn = Cqneg.parse "R(?x), S(?x,?y), !T(?y)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "T" [ "9" ] ]
  in
  let q_tilde, poly =
    Negation_red.prop61 ~svc:(Oracle.svc_of (Query.Cqneg qn)) ~q:qn db
  in
  check_zpoly "Prop 6.1" (Model_counting.fgmc_polynomial_brute q_tilde db) poly

let test_prop61_multi_component () =
  (* q = R(x) S(x,y) !W(y)  ∧  T(u): the vc-component is R,S with guarded W *)
  let qn = Cqneg.parse "R(?x), S(?x,?y), T(?u), !W(?y)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "W" [ "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "T" [ "9" ] ]
  in
  let q_tilde, poly =
    Negation_red.prop61 ~svc:(Oracle.svc_of (Query.Cqneg qn)) ~q:qn db
  in
  check_zpoly "multi-component" (Model_counting.fgmc_polynomial_brute q_tilde db) poly

let test_prop61_guards () =
  let not_sjf = Cqneg.parse "R(?x), R(?y,?z)" in
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  Alcotest.check_raises "sjf guard"
    (Invalid_argument "Negation_red.prop61: query is not self-join-free") (fun () ->
        ignore (Negation_red.prop61 ~svc:(Oracle.svc_of (Query.Cqneg not_sjf)) ~q:not_sjf db));
  let varfree = Cqneg.parse "R(?x), !W(c)" in
  Alcotest.check_raises "variable-free negation"
    (Invalid_argument "Negation_red.prop61: variable-free negative atoms unsupported")
    (fun () ->
       ignore (Negation_red.prop61 ~svc:(Oracle.svc_of (Query.Cqneg varfree)) ~q:varfree db))

let test_lemma_d1 () =
  (* q1 ∧ q2 decomposable with unshared constants: R(x),S(x,y) and T(u,v);
     the endo-only oracle certifies that no exogenous facts appear *)
  let q1 = Query_parse.parse "R(?x), S(?x,?y)" in
  let q2 = Query_parse.parse "T(?u,?v)" in
  let qand = Query.And (q1, q2) in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "a"; "b" ];
              fact "T" [ "a"; "c" ]; fact "S" [ "3"; "4" ] ]
      ~exo:[]
  in
  let svc = Oracle.svc_endo_only (Oracle.svc_of qand) in
  let poly = Fgmc_to_svc.lemma_d1 ~svc ~q1 ~q2 db in
  check_zpoly "Lemma D.1" (Model_counting.fgmc_polynomial_brute qand db) poly;
  (* the guard *)
  let db_exo = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "T" [ "a"; "b" ] ] in
  Alcotest.check_raises "exogenous input rejected"
    (Invalid_argument "Fgmc_to_svc.lemma_d1: database has exogenous facts") (fun () ->
        ignore (Fgmc_to_svc.lemma_d1 ~svc ~q1 ~q2 db_exo))

let prop_lemma_d1_random =
  qcheck ~count:15 "Lemma D.1 on random purely endogenous instances"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q1 = Query_parse.parse "R(?x), S(?x,?y)" in
       let q2 = Query_parse.parse "T(?u,?v)" in
       let qand = Query.And (q1, q2) in
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 2) ]
           ~consts:[ "1"; "2"; "3" ] ~n_endo:(2 + Workload.int r 4) ~n_exo:0
       in
       let svc = Oracle.svc_endo_only (Oracle.svc_of qand) in
       Poly.Z.equal
         (Fgmc_to_svc.lemma_d1 ~svc ~q1 ~q2 db)
         (Model_counting.fgmc_polynomial qand db))

let prop_lemma61_random =
  qcheck ~count:25 "Lemma 6.1 on random instances" QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
           ~consts:[ "1"; "2" ] ~n_endo:(1 + Workload.int r 3) ~n_exo:(Workload.int r 3)
       in
       Poly.Z.equal
         (Endogenous.fgmc_polynomial_via_fmc ~fmc:(Oracle.fgmc_of qrst) db)
         (Model_counting.fgmc_polynomial qrst db))

let prop_prop62_random =
  qcheck ~count:15 "Prop 6.2 on random instances" QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
           ~consts:[ "1"; "2" ] ~n_endo:(1 + Workload.int r 3) ~n_exo:(Workload.int r 2)
       in
       match Max_svc_red.reduce_auto ~max_svc:(Oracle.max_svc_of qrst) ~query:qrst db with
       | Some poly -> Poly.Z.equal poly (Model_counting.fgmc_polynomial qrst db)
       | None -> false)

let prop_prop63_random =
  qcheck ~count:15 "Prop 6.3 on random graph instances" QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let g =
         Workload.random_graph r ~labels:[ "R"; "T" ] ~nodes:[ "1"; "2"; "3"; "4" ]
           ~n_endo:5 ~n_exo:0
       in
       let fs = Database.all g in
       let q = Query_parse.parse "R(?x,?y), T(?y,?z)" in
       let consts = Fact.Set.consts fs in
       if Term.Sset.cardinal consts < 2 then true
       else begin
         let endo_consts =
           Term.Sset.of_list
             (List.filteri (fun i _ -> i < 3) (Term.Sset.elements consts))
         in
         let inst = Const_svc.make_instance ~facts:fs ~endo_consts in
         Poly.Z.equal
           (Const_red.fgmc_const_via_svc_const ~svc_const:(Oracle.svc_const_of q) ~query:q inst)
           (Const_svc.fgmc_const_polynomial_brute q inst)
       end)

(* Max-SVC: exhaustive differential sweep over EVERY partitioned database
   of a small q_RST universe — [max_svc] must agree with its own brute
   force, with per-fact Eq. 2 enumeration, and with the game view
   ([Game.of_query] + [shapley_all]); [top_contributors] must be exactly
   the argmax set and Lemma 6.3 must hold on every instance. *)
let test_max_svc_exhaustive () =
  let universe =
    [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "T" [ "1" ] ]
  in
  Gen.iter_databases universe (fun db ->
      let fail fmt =
        Printf.ksprintf
          (fun m -> Alcotest.failf "%s on %s" m (Format.asprintf "%a" Database.pp db))
          fmt
      in
      (match (Max_svc.max_svc qrst db, Max_svc.max_svc_brute qrst db) with
       | None, None ->
         if Database.size_endo db <> 0 then fail "None on a nonempty database"
       | Some (f, v), Some (_, vb) ->
         if not (Rational.equal v vb) then fail "max_svc <> max_svc_brute";
         (* the returned fact attains the reported maximum *)
         if not (Rational.equal v (Svc.svc_brute qrst db f)) then
           fail "returned fact does not attain the maximum";
         (* game view: max over Game.shapley_all is the same value *)
         let game, _ = Game.of_query qrst db in
         let values = Game.shapley_all game in
         let vmax = Array.fold_left
             (fun acc x -> if Rational.lt acc x then x else acc)
             values.(0) values
         in
         if not (Rational.equal v vmax) then fail "max_svc <> game maximum";
         (* top_contributors = the argmax set, each at the maximum *)
         let tops = Max_svc.top_contributors qrst db in
         let argmax =
           List.filter
             (fun mu -> Rational.equal (Svc.svc_brute qrst db mu) v)
             (Database.endo_list db)
         in
         if
           not
             (Fact.Set.equal
                (Fact.Set.of_list (List.map fst tops))
                (Fact.Set.of_list argmax))
         then fail "top_contributors <> argmax set";
         if not (List.for_all (fun (_, x) -> Rational.equal x v) tops) then
           fail "top contributor below the maximum"
       | _ -> fail "max_svc/max_svc_brute disagree on emptiness");
      (* Lemma 6.3 on every instance of the monotone q_RST game *)
      if not (Max_svc.singleton_support_is_max qrst db) then
        fail "singleton support is not maximal")

let prop_max_svc_random =
  qcheck ~count:40 "max-SVC differential on random instances" Gen.seed_gen
    (fun seed ->
       let db = Gen.random_db ~max_endo:5 ~max_exo:2 seed in
       match (Max_svc.max_svc qrst db, Max_svc.max_svc_brute qrst db) with
       | None, None -> Database.size_endo db = 0
       | Some (f, v), Some (_, vb) ->
         Rational.equal v vb
         && Rational.equal v (Svc.svc_brute qrst db f)
         && Max_svc.singleton_support_is_max qrst db
       | _ -> false)

(* Const-SVC: the wealth function of the constants game, built here
   independently from [Query.eval] over induced fact sets, must give
   [Const_svc.svc_const] for every endogenous constant of every
   endo/exo constant partition of a small database. *)
let const_game q inst =
  let cn = Array.of_list (Term.Sset.elements (Const_svc.endo_consts inst)) in
  let coalition mask =
    let s = ref Term.Sset.empty in
    Array.iteri (fun i c -> if mask land (1 lsl i) <> 0 then s := Term.Sset.add c !s) cn;
    !s
  in
  let baseline = Query.eval q (Const_svc.induced inst Term.Sset.empty) in
  let wealth mask =
    let holds = Query.eval q (Const_svc.induced inst (coalition mask)) in
    match (holds, baseline) with
    | true, false -> Rational.one
    | false, true -> Rational.neg Rational.one
    | _ -> Rational.zero
  in
  (Game.make ~n:(Array.length cn) ~wealth, cn)

let test_const_svc_exhaustive () =
  let q = Query_parse.parse "R(?x,?y), T(?y,?z)" in
  let fs =
    facts
      [ fact "R" [ "1"; "2" ]; fact "T" [ "2"; "3" ]; fact "R" [ "4"; "2" ];
        fact "T" [ "2"; "1" ] ]
  in
  let consts = Term.Sset.elements (Fact.Set.consts fs) in
  let n = List.length consts in
  for mask = 0 to (1 lsl n) - 1 do
    let endo_consts =
      List.fold_left
        (fun acc (i, c) ->
           if mask land (1 lsl i) <> 0 then Term.Sset.add c acc else acc)
        Term.Sset.empty
        (List.mapi (fun i c -> (i, c)) consts)
    in
    let inst = Const_svc.make_instance ~facts:fs ~endo_consts in
    let game, cn = const_game q inst in
    let values = Game.shapley_all game in
    Array.iteri
      (fun i c ->
         if not (Rational.equal values.(i) (Const_svc.svc_const q inst c)) then
           Alcotest.failf "svc_const <> game Shapley for %s on partition %d" c mask)
      cn
  done

let prop_const_svc_random =
  qcheck ~count:25 "const-SVC vs constants game on random graphs" Gen.seed_gen
    (fun seed ->
       let q = Query_parse.parse "R(?x,?y), T(?y,?z)" in
       let r = Workload.rng seed in
       let g =
         Workload.random_graph r ~labels:[ "R"; "T" ] ~nodes:[ "1"; "2"; "3"; "4" ]
           ~n_endo:(1 + Workload.int r 5) ~n_exo:0
       in
       let fs = Database.all g in
       let consts = Fact.Set.consts fs in
       let endo_consts =
         Term.Sset.filter (fun _ -> Workload.bool r) consts
       in
       let inst = Const_svc.make_instance ~facts:fs ~endo_consts in
       let game, cn = const_game q inst in
       let values = Game.shapley_all game in
       let ok = ref true in
       Array.iteri
         (fun i c ->
            if not (Rational.equal values.(i) (Const_svc.svc_const q inst c)) then
              ok := false)
         cn;
       List.for_all2
         (fun (c1, v1) (c2, v2) -> c1 = c2 && Rational.equal v1 v2)
         (Const_svc.svc_const_all q inst)
         (Array.to_list (Array.mapi (fun i c -> (c, values.(i))) cn))
       && !ok)

let suite =
  [
    Alcotest.test_case "Lemma 6.1: 2^k calls" `Quick test_lemma61_call_count;
    Alcotest.test_case "Lemma 6.1: oracle purity" `Quick test_lemma61_oracle_purity;
    Alcotest.test_case "Corollary 6.1: SVCⁿ via FMC" `Quick test_cor61_svc_endo;
    Alcotest.test_case "Lemma 6.2: unshared constant" `Quick test_lemma62_unshared_constant;
    Alcotest.test_case "Prop 6.2: max-SVC" `Quick test_prop62_max_svc;
    Alcotest.test_case "Prop 6.2: trivial case" `Quick test_prop62_trivial;
    Alcotest.test_case "Prop 6.3: forward" `Quick test_prop63_forward;
    Alcotest.test_case "Prop 6.3: backward" `Quick test_prop63_backward;
    Alcotest.test_case "Prop 6.3: guard" `Quick test_prop63_guard;
    Alcotest.test_case "Prop 6.1: negation" `Quick test_prop61_negation;
    Alcotest.test_case "Prop 6.1: multi-component" `Quick test_prop61_multi_component;
    Alcotest.test_case "Prop 6.1: guards" `Quick test_prop61_guards;
    Alcotest.test_case "Lemma D.1: decomposable, purely endogenous" `Quick test_lemma_d1;
    Alcotest.test_case "max-SVC: all databases vs brute force and game" `Slow
      test_max_svc_exhaustive;
    Alcotest.test_case "const-SVC: all partitions vs constants game" `Slow
      test_const_svc_exhaustive;
    prop_lemma_d1_random;
    prop_lemma61_random;
    prop_prop62_random;
    prop_prop63_random;
    prop_max_svc_random;
    prop_const_svc_random;
  ]
