open Test_util

(* The defining property: for every S ⊆ Dₙ,
   Bform.eval (lineage q db) S  ⇔  S ∪ Dₓ ⊨ q. *)
let lineage_correct q db =
  let phi = Lineage.lineage q db in
  Database.fold_endo_subsets
    (fun s acc ->
       acc && Bform.eval phi s = Query.eval q (Fact.Set.union s (Database.exo db)))
    db true

let test_bform_basics () =
  let a = Bform.fv (fact "R" [ "1" ]) and b = Bform.fv (fact "S" [ "2" ]) in
  Alcotest.(check bool) "conj fold true" true (Bform.conj [] = Bform.tru);
  Alcotest.(check bool) "disj fold false" true (Bform.disj [] = Bform.fls);
  Alcotest.(check bool) "conj false" true (Bform.conj [ a; Bform.fls ] = Bform.fls);
  Alcotest.(check bool) "disj true" true (Bform.disj [ a; Bform.tru ] = Bform.tru);
  Alcotest.(check bool) "neg neg" true (Bform.neg (Bform.neg a) = a);
  Alcotest.(check bool) "flattening" true
    (Bform.conj [ a; Bform.conj [ b ] ] = Bform.conj [ a; b ]);
  Alcotest.(check int) "vars" 2 (Fact.Set.cardinal (Bform.vars (Bform.conj [ a; b ])));
  Alcotest.(check bool) "eval" true
    (Bform.eval (Bform.disj [ a; b ]) (facts [ fact "S" [ "2" ] ]))

let test_bform_condition () =
  let f1 = fact "R" [ "1" ] and f2 = fact "S" [ "2" ] in
  let phi = Bform.conj [ Bform.fv f1; Bform.fv f2 ] in
  Alcotest.(check bool) "condition true" true
    (Bform.condition f1 true phi = Bform.fv f2);
  Alcotest.(check bool) "condition false" true (Bform.condition f1 false phi = Bform.fls);
  let neg = Bform.neg (Bform.fv f1) in
  Alcotest.(check bool) "condition under negation" true
    (Bform.condition f1 true neg = Bform.fls)

let test_lineage_cq () =
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "R" [ "4" ]; fact "S" [ "4"; "5" ] ]
  in
  Alcotest.(check bool) "lineage correct" true (lineage_correct q db);
  (* exogenous support makes the lineage trivially true *)
  let phi = Lineage.lineage q db in
  Alcotest.(check bool) "exo support ⇒ ⊤" true (phi = Bform.tru)

let test_lineage_rpq_supports () =
  let q = Rpq.of_string "AB*C" ~src:"s" ~dst:"t" in
  let g =
    facts
      [ fact "A" [ "s"; "1" ]; fact "B" [ "1"; "2" ]; fact "C" [ "2"; "t" ];
        fact "C" [ "1"; "t" ] ]
  in
  let ms = Lineage.rpq_minimal_supports q g in
  (* two minimal supports: A,C(1,t) and A,B,C(2,t) *)
  Alcotest.(check int) "two minimal supports" 2 (List.length ms);
  (* agreement with the generic enumeration *)
  let generic = Query.minimal_supports_in (Query.Rpq q) g in
  Alcotest.(check int) "generic agrees" (List.length generic) (List.length ms);
  List.iter
    (fun s ->
       Alcotest.(check bool) "generic contains" true
         (List.exists (Fact.Set.equal s) generic))
    ms

let test_lineage_rpq_cycles () =
  (* cyclic graph: walk enumeration must terminate *)
  let q = Rpq.of_string "A*" ~src:"s" ~dst:"t" in
  let g =
    facts
      [ fact "A" [ "s"; "1" ]; fact "A" [ "1"; "s" ]; fact "A" [ "1"; "t" ] ]
  in
  let ms = Lineage.rpq_minimal_supports q g in
  Alcotest.(check int) "single minimal path" 1 (List.length ms);
  Alcotest.(check int) "path length 2" 2 (Fact.Set.cardinal (List.hd ms))

let test_lineage_cqneg () =
  let q = Query_parse.parse "cqneg: R(?x), !S(?x)" in
  let db =
    Database.make ~endo:[ fact "R" [ "1" ]; fact "S" [ "1" ]; fact "R" [ "2" ] ] ~exo:[]
  in
  Alcotest.(check bool) "negation lineage" true (lineage_correct q db);
  (* exogenous negative fact kills a branch *)
  let db2 = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "S" [ "1" ] ] in
  Alcotest.(check bool) "exo negation" true (lineage_correct q db2);
  let phi2 = Lineage.lineage q db2 in
  Alcotest.(check bool) "always false" true (phi2 = Bform.fls)

let test_compile_counts () =
  (* x ∨ y over universe {x, y, z}: models: sizes — enumerate by hand.
     satisfying: {x},{y},{x,y},{x,z},{y,z},{x,y,z} → poly: 2z + 3z² + z³ *)
  let x = fact "R" [ "x" ] and y = fact "R" [ "y" ] and z = fact "R" [ "z" ] in
  let phi = Bform.disj [ Bform.fv x; Bform.fv y ] in
  let p = Compile.size_polynomial ~universe:[ x; y; z ] phi in
  check_zpoly "or-count"
    (Poly.Z.of_coeffs (List.map Bigint.of_int [ 0; 2; 3; 1 ]))
    p;
  check_bigint "total" (Bigint.of_int 6) (Compile.count_models ~universe:[ x; y; z ] phi);
  (* constants *)
  check_bigint "⊤ counts all" (Bigint.of_int 8)
    (Compile.count_models ~universe:[ x; y; z ] Bform.tru);
  check_bigint "⊥ counts none" Bigint.zero
    (Compile.count_models ~universe:[ x; y; z ] Bform.fls);
  Alcotest.check_raises "foreign variable"
    (Invalid_argument "Compile: formula mentions a fact outside the universe") (fun () ->
        ignore (Compile.size_polynomial ~universe:[ x ] (Bform.fv y)))

let test_compile_negation () =
  let x = fact "R" [ "x" ] and y = fact "R" [ "y" ] in
  let phi = Bform.conj [ Bform.fv x; Bform.neg (Bform.fv y) ] in
  let p = Compile.size_polynomial ~universe:[ x; y ] phi in
  check_zpoly "x ∧ ¬y" (Poly.Z.of_coeffs [ Bigint.zero; Bigint.one ]) p

let test_compile_naive_agrees () =
  let vars = List.init 6 (fun i -> fact "V" [ string_of_int i ]) in
  let nth i = Bform.fv (List.nth vars i) in
  let phi =
    Bform.disj
      [ Bform.conj [ nth 0; nth 1 ]; Bform.conj [ nth 2; nth 3 ];
        Bform.conj [ nth 1; nth 4; Bform.neg (nth 5) ] ]
  in
  check_zpoly "memo = naive"
    (Compile.size_polynomial_naive ~universe:vars phi)
    (Compile.size_polynomial ~universe:vars phi)

let test_probability () =
  let x = fact "R" [ "x" ] and y = fact "R" [ "y" ] in
  let phi = Bform.disj [ Bform.fv x; Bform.fv y ] in
  let prob f = if Fact.equal f x then Rational.of_ints 1 2 else Rational.of_ints 1 3 in
  (* 1 - (1/2)(2/3) = 2/3 *)
  check_rational "or probability" (Rational.of_ints 2 3) (Compile.probability ~prob phi);
  check_rational "naive agrees" (Compile.probability_naive ~prob phi)
    (Compile.probability ~prob phi);
  check_rational "⊤" Rational.one (Compile.probability ~prob Bform.tru)

(* The decisive property test: lineage+compile vs brute force on random
   instances of several query classes. *)
let prop_lineage_random q_str rels =
  qcheck ~count:40 ("lineage correct: " ^ q_str) QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels ~consts:[ "s"; "t"; "1"; "2"; "a" ]
           ~n_endo:(3 + Workload.int r 4) ~n_exo:(Workload.int r 3)
       in
       lineage_correct (Query_parse.parse q_str) db)

let suite =
  [
    Alcotest.test_case "bform basics" `Quick test_bform_basics;
    Alcotest.test_case "bform conditioning" `Quick test_bform_condition;
    Alcotest.test_case "CQ lineage" `Quick test_lineage_cq;
    Alcotest.test_case "RPQ minimal supports" `Quick test_lineage_rpq_supports;
    Alcotest.test_case "RPQ supports with cycles" `Quick test_lineage_rpq_cycles;
    Alcotest.test_case "CQ¬ lineage" `Quick test_lineage_cqneg;
    Alcotest.test_case "size polynomial" `Quick test_compile_counts;
    Alcotest.test_case "negated counting" `Quick test_compile_negation;
    Alcotest.test_case "naive = memoized" `Quick test_compile_naive_agrees;
    Alcotest.test_case "weighted probability" `Quick test_probability;
    prop_lineage_random "R(?x), S(?x,?y), T(?y)" [ ("R", 1); ("S", 2); ("T", 1) ];
    prop_lineage_random "ucq: R(?x,?y) | S(?y)" [ ("R", 2); ("S", 1) ];
    prop_lineage_random "rpq: (AB*C)(s,t)" [ ("A", 2); ("B", 2); ("C", 2) ];
    prop_lineage_random "crpq: (AB+BA)(?x,a)" [ ("A", 2); ("B", 2) ];
    prop_lineage_random "cqneg: R(?x), S(?x,?y), !T(?y)" [ ("R", 1); ("S", 2); ("T", 1) ];
  ]
