open Test_util

let verdict_of q = (Classify.classify q).Classify.verdict

let test_safety_sjf () =
  (* the lifted-inference procedure must coincide with hierarchy on sjf-CQs *)
  List.iter
    (fun (s, expected) ->
       let c = Cq.parse s in
       let got = Safety.cq c in
       Alcotest.(check string) s (Safety.verdict_to_string expected)
         (Safety.verdict_to_string got))
    [
      ("R(?x)", Safety.Safe);
      ("R(?x), S(?x,?y)", Safety.Safe);
      ("R(?x), S(?x,?y), U(?x,?y,?z)", Safety.Safe);
      ("R(?x), S(?x,?y), T(?y)", Safety.Unsafe);
      ("R(?x), S(?y)", Safety.Safe);
      ("A(?x,?y), B(?y,?z), C(?z,?w)", Safety.Unsafe);
    ]

let test_safety_matches_hierarchy_random () =
  (* exhaustive-ish check over generated sjf-CQs on three relations *)
  let vars = [ "x"; "y"; "z" ] in
  let pick_var r = Term.var (Workload.pick r vars) in
  let rng = Workload.rng 2024 in
  for _ = 1 to 200 do
    let atoms =
      [ Atom.make "R" [ pick_var rng ];
        Atom.make "S" [ pick_var rng; pick_var rng ];
        Atom.make "T" [ pick_var rng ] ]
    in
    let q = Cq.of_atoms atoms in
    let q_core = Cq.core q in
    if Cq.is_self_join_free q_core then begin
      let hier = Cq.is_hierarchical q_core in
      match Safety.cq q with
      | Safety.Safe -> Alcotest.(check bool) (Cq.to_string q) true hier
      | Safety.Unsafe -> Alcotest.(check bool) (Cq.to_string q) false hier
      | Safety.Unknown -> Alcotest.fail ("unknown on sjf: " ^ Cq.to_string q)
    end
  done

let test_safety_ucq () =
  (* independent union of two safe queries *)
  Alcotest.(check string) "independent union" "safe"
    (Safety.verdict_to_string (Safety.ucq (Ucq.parse "R(?x) | S(?x,?y)")));
  (* union containing an unsafe disjunct over separate vocabulary *)
  Alcotest.(check string) "unsafe component" "unsafe"
    (Safety.verdict_to_string
       (Safety.ucq (Ucq.parse "A(?x) | R(?x), S(?x,?y), T(?y)")));
  (* inclusion–exclusion: safe disjuncts sharing a relation *)
  Alcotest.(check string) "IE safe" "safe"
    (Safety.verdict_to_string (Safety.ucq (Ucq.parse "R(?x), S(?x,?y) | S(?u,?v)")))

let test_classify_rpq () =
  let j l = Classify.classify_rpq (Rpq.of_string l ~src:"s" ~dst:"t") in
  Alcotest.(check string) "A" "FP" (Classify.verdict_to_string (j "A").Classify.verdict);
  Alcotest.(check string) "AB" "FP" (Classify.verdict_to_string (j "AB").Classify.verdict);
  Alcotest.(check string) "ABC" "#P-hard" (Classify.verdict_to_string (j "ABC").Classify.verdict);
  Alcotest.(check string) "AB*" "#P-hard" (Classify.verdict_to_string (j "AB*").Classify.verdict);
  Alcotest.(check string) "A+BC" "FP" (Classify.verdict_to_string (j "A+BC").Classify.verdict)

let test_classify_sjf_cq () =
  Alcotest.(check bool) "hierarchical FP" true
    (verdict_of (Query_parse.parse "R(?x), S(?x,?y)") = Classify.FP);
  Alcotest.(check bool) "q_RST hard" true
    (verdict_of (Query_parse.parse "R(?x), S(?x,?y), T(?y)") = Classify.SharpP_hard);
  Alcotest.check_raises "self-join rejected"
    (Invalid_argument "Classify.classify_sjf_cq: query has self-joins") (fun () ->
        ignore (Classify.classify_sjf_cq (Cq.parse "R(?x,?y), R(?y,?z)")))

let test_classify_ucq () =
  Alcotest.(check bool) "safe union" true
    (verdict_of (Query_parse.parse "ucq: R(?x) | S(?x,?y)") = Classify.FP);
  Alcotest.(check bool) "union with hard connected disjunct" true
    (verdict_of (Query_parse.parse "ucq: A(?x) | R(?x), S(?x,?y), T(?y)")
     = Classify.SharpP_hard)

let test_classify_cqneg () =
  Alcotest.(check bool) "hierarchical CQ¬" true
    (verdict_of (Query_parse.parse "cqneg: R(?x), S(?x,?y), !W(?x,?y)") = Classify.FP);
  Alcotest.(check bool) "non-hierarchical CQ¬" true
    (verdict_of (Query_parse.parse "cqneg: R(?x), S(?x,?y), !T(?y)") = Classify.SharpP_hard)

let test_classify_graph_queries () =
  (* unbounded connected graph query: hard by [1] through Cor 4.2 *)
  Alcotest.(check bool) "A* CRPQ hard" true
    (verdict_of (Query_parse.parse "crpq: (AAA*)(?x,?y)") = Classify.SharpP_hard);
  (* bounded cc-disjoint CRPQ expands to a UCQ *)
  Alcotest.(check bool) "bounded sjf-CRPQ safe" true
    (verdict_of (Query_parse.parse "crpq: A(?x,?y)") = Classify.FP);
  (* cc-disjoint with a hard component *)
  Alcotest.(check bool) "cc-disjoint hard component" true
    (verdict_of (Query_parse.parse "crpq: (ABC)(?x,?y), D(?u,?v)") = Classify.SharpP_hard)

let test_classify_decomposable_and () =
  let q =
    Query.And (Query_parse.parse "R(?x), S(?x,?y)", Query_parse.parse "T(?u)")
  in
  Alcotest.(check bool) "conjunction of safe parts" true (verdict_of q = Classify.FP);
  let qh =
    Query.And (Query_parse.parse "R(?x), S(?x,?y), T(?y)", Query_parse.parse "U(?u)")
  in
  Alcotest.(check bool) "conjunction with hard part" true (verdict_of qh = Classify.SharpP_hard)

let test_pseudo_connected_witnesses () =
  (match Pseudo_connected.witness (Query_parse.parse "R(?x), S(?x,?y), T(?y)") with
   | Some w ->
     Alcotest.(check int) "island size" 3 (Fact.Set.cardinal w.Pseudo_connected.island)
   | None -> Alcotest.fail "expected connected witness");
  (match Pseudo_connected.witness (Query_parse.parse "rpq: (ABC)(s,t)") with
   | Some w ->
     Alcotest.(check bool) "rule is B.1" true
       (w.Pseudo_connected.rule = "Lemma B.1 (RPQ, word of length ≥ 2)")
   | None -> Alcotest.fail "expected RPQ witness");
  Alcotest.(check bool) "A+B has no witness" true
    (Pseudo_connected.witness (Query_parse.parse "rpq: (A+B)(s,t)") = None);
  (* disconnected query: no pseudo-connectivity witness *)
  Alcotest.(check bool) "disconnected CQ" true
    (Pseudo_connected.witness (Query_parse.parse "R(?x), S(?y)") = None)

let test_decomposable_witnesses () =
  (match
     Decomposable.witness
       (Query.And (Query_parse.parse "R(?x)", Query_parse.parse "S(?y)"))
   with
   | Some d ->
     Alcotest.(check bool) "vocabularies disjoint" true
       (Term.Sset.is_empty
          (Term.Sset.inter (Query.rels d.Decomposable.q1) (Query.rels d.Decomposable.q2)))
   | None -> Alcotest.fail "expected decomposition");
  Alcotest.(check bool) "shared vocabulary refused" true
    (Decomposable.witness (Query.And (Query_parse.parse "R(?x)", Query_parse.parse "R(?y)"))
     = None);
  (match Decomposable.witness (Query_parse.parse "crpq: A(?x,?y), B(?u,?v)") with
   | Some _ -> ()
   | None -> Alcotest.fail "expected CRPQ decomposition")

(* Consistency: every query classified FP must have its lineage-based FGMC
   agree with brute force on random instances (the FP algorithms are real). *)
let prop_fp_queries_computable =
  qcheck ~count:20 "FP classification backed by a working algorithm"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2) ] ~consts:[ "1"; "2"; "3" ]
           ~n_endo:(1 + Workload.int r 4) ~n_exo:(Workload.int r 2)
       in
       let q = Query_parse.parse "R(?x), S(?x,?y)" in
       verdict_of q = Classify.FP && fgmc_agree q db)

(* Consistency: every query classified #P-hard admits an executable
   FGMC ≤ SVC reduction (we run it). *)
let prop_hard_queries_reducible =
  qcheck ~count:10 "#P-hard classification backed by a working reduction"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
           ~consts:[ "1"; "2" ] ~n_endo:(1 + Workload.int r 3) ~n_exo:(Workload.int r 2)
       in
       let q = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
       verdict_of q = Classify.SharpP_hard
       &&
       match Fgmc_to_svc.lemma41_auto ~svc:(Oracle.svc_of q) ~query:q db with
       | Some poly -> Poly.Z.equal poly (Model_counting.fgmc_polynomial q db)
       | None -> false)

let suite =
  [
    Alcotest.test_case "safety on sjf-CQs" `Quick test_safety_sjf;
    Alcotest.test_case "safety = hierarchy (random sjf)" `Quick test_safety_matches_hierarchy_random;
    Alcotest.test_case "safety on UCQs" `Quick test_safety_ucq;
    Alcotest.test_case "Cor 4.3: RPQ classification" `Quick test_classify_rpq;
    Alcotest.test_case "sjf-CQ classification" `Quick test_classify_sjf_cq;
    Alcotest.test_case "UCQ classification" `Quick test_classify_ucq;
    Alcotest.test_case "CQ¬ classification" `Quick test_classify_cqneg;
    Alcotest.test_case "graph query classification" `Quick test_classify_graph_queries;
    Alcotest.test_case "decomposable conjunctions" `Quick test_classify_decomposable_and;
    Alcotest.test_case "pseudo-connected witnesses" `Quick test_pseudo_connected_witnesses;
    Alcotest.test_case "decomposable witnesses" `Quick test_decomposable_witnesses;
    prop_fp_queries_computable;
    prop_hard_queries_reducible;
  ]
