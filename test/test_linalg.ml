open Test_util

let q = Rational.of_ints
let mat rows = Array.of_list (List.map Array.of_list rows)

let test_solve_2x2 () =
  (* x + 2y = 5 ; 3x - y = 1  =>  x = 1, y = 2 *)
  let m = mat [ [ q 1 1; q 2 1 ]; [ q 3 1; q (-1) 1 ] ] in
  match Linalg.solve m [| q 5 1; q 1 1 |] with
  | Some x ->
    check_rational "x" (q 1 1) x.(0);
    check_rational "y" (q 2 1) x.(1)
  | None -> Alcotest.fail "unexpected singular"

let test_solve_singular () =
  let m = mat [ [ q 1 1; q 2 1 ]; [ q 2 1; q 4 1 ] ] in
  Alcotest.(check bool) "singular" true (Linalg.solve m [| q 1 1; q 2 1 |] = None)

let test_solve_permuted () =
  (* first pivot is zero: forces a row swap *)
  let m = mat [ [ q 0 1; q 1 1 ]; [ q 1 1; q 0 1 ] ] in
  match Linalg.solve m [| q 7 1; q 9 1 |] with
  | Some x ->
    check_rational "x" (q 9 1) x.(0);
    check_rational "y" (q 7 1) x.(1)
  | None -> Alcotest.fail "unexpected singular"

let test_determinant () =
  check_rational "det identity" (q 1 1)
    (Linalg.determinant (mat [ [ q 1 1; q 0 1 ]; [ q 0 1; q 1 1 ] ]));
  check_rational "det 2x2" (q (-2) 1)
    (Linalg.determinant (mat [ [ q 1 1; q 2 1 ]; [ q 3 1; q 4 1 ] ]));
  check_rational "det singular" Rational.zero
    (Linalg.determinant (mat [ [ q 1 1; q 2 1 ]; [ q 2 1; q 4 1 ] ]));
  check_rational "det swap sign" (q 2 1)
    (Linalg.determinant (mat [ [ q 3 1; q 4 1 ]; [ q 1 1; q 2 1 ] ]))

let test_mat_vec () =
  let m = mat [ [ q 1 1; q 2 1 ]; [ q 3 1; q 4 1 ] ] in
  let v = Linalg.mat_vec m [| q 1 1; q 1 1 |] in
  check_rational "row 0" (q 3 1) v.(0);
  check_rational "row 1" (q 7 1) v.(1)

let test_vandermonde () =
  let pts = Array.init 6 (fun i -> q (i + 1) 1) in
  let coeffs = Array.init 6 (fun i -> q ((i * i) - 4) 3) in
  let rhs = Linalg.mat_vec (Linalg.vandermonde pts) coeffs in
  let solved = Linalg.solve_vandermonde pts rhs in
  Array.iteri (fun i c -> check_rational (Printf.sprintf "c%d" i) coeffs.(i) c) solved

let test_vandermonde_duplicate () =
  Alcotest.check_raises "duplicate points"
    (Invalid_argument "Linalg.solve_vandermonde: duplicate points") (fun () ->
        ignore (Linalg.solve_vandermonde [| q 1 1; q 1 1 |] [| q 0 1; q 0 1 |]))

let test_bacher_matrices () =
  (* the (i+j)! matrices underpinning the Lemma 4.1/4.3/4.4 systems are
     invertible (Bacher 2002) *)
  for n = 0 to 7 do
    let m = Linalg.shifted_factorial_matrix n in
    Alcotest.(check bool)
      (Printf.sprintf "det (i+j)! n=%d non-zero" n)
      false
      (Rational.is_zero (Linalg.determinant m))
  done

let test_reduction_system_invertible () =
  (* the actual matrices inverted by the engine: (j+m)!(n+i-j)!/(n+i+m+1)! *)
  List.iter
    (fun (n, m) ->
       let mx =
         Array.init (n + 1) (fun i ->
             Array.init (n + 1) (fun j ->
                 Rational.make
                   (Bigint.mul (Bigint.factorial (j + m)) (Bigint.factorial (n + i - j)))
                   (Bigint.factorial (n + i + m + 1))))
       in
       Alcotest.(check bool)
         (Printf.sprintf "engine system n=%d m=%d invertible" n m)
         false
         (Rational.is_zero (Linalg.determinant mx)))
    [ (0, 0); (1, 0); (3, 0); (3, 2); (5, 1); (6, 3) ]

let prop_solve_roundtrip =
  qcheck ~count:50 "solve inverts mat_vec"
    QCheck2.Gen.(
      pair (int_range 1 5)
        (pair (list_size (return 25) (int_range (-9) 9))
           (list_size (return 5) (int_range (-9) 9))))
    (fun (n, (entries, xs)) ->
       let entries = Array.of_list entries and xs = Array.of_list xs in
       let m = Array.init n (fun i -> Array.init n (fun j -> q entries.((5 * i) + j) 1)) in
       let x = Array.init n (fun i -> q xs.(i) 1) in
       let rhs = Linalg.mat_vec m x in
       match Linalg.solve m rhs with
       | None -> true (* singular random matrix: nothing to check *)
       | Some x' -> Array.for_all2 Rational.equal x x')

let suite =
  [
    Alcotest.test_case "solve 2x2" `Quick test_solve_2x2;
    Alcotest.test_case "solve singular" `Quick test_solve_singular;
    Alcotest.test_case "solve with pivoting" `Quick test_solve_permuted;
    Alcotest.test_case "determinant" `Quick test_determinant;
    Alcotest.test_case "mat_vec" `Quick test_mat_vec;
    Alcotest.test_case "vandermonde" `Quick test_vandermonde;
    Alcotest.test_case "vandermonde duplicates" `Quick test_vandermonde_duplicate;
    Alcotest.test_case "Bacher matrices invertible" `Quick test_bacher_matrices;
    Alcotest.test_case "engine systems invertible" `Quick test_reduction_system_invertible;
    prop_solve_roundtrip;
  ]
