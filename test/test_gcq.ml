open Test_util

(* Generalized CQs with nested negation — Examples D.1 and D.2 (Appendix
   D.2.3), which are sjf-1RA¬ queries not expressible as sjf-CQ¬. *)

(* Example D.1: q1 = ∃x,y D(x) ∧ S(x,y) ∧ A(y) ∧ ¬(B(y) ∧ ¬C(y)) *)
let q1 = Gcq.parse "D(?x), S(?x,?y), A(?y), !(B(?y) & !C(?y))"

(* Example D.2: q2 = ∃x,y S(x,y) ∧ ¬(A(x) ∧ B(y)) *)
let q2 = Gcq.parse "S(?x,?y), !(A(?x) & B(?y))"

let test_parse () =
  Alcotest.(check int) "q1 guards" 3 (List.length (Gcq.guards q1));
  Alcotest.(check int) "q1 conditions" 1 (List.length (Gcq.conditions q1));
  Alcotest.(check bool) "q1 sjf guards" true (Gcq.is_guard_self_join_free q1);
  Alcotest.(check bool) "q1 vocabularies disjoint" true
    (Gcq.guards_disjoint_from_conditions q1);
  Alcotest.(check bool) "no variable-free atoms" false
    (Gcq.has_variable_free_condition_atom q1);
  (* reparse of the printed form *)
  let q1' = Gcq.parse (Gcq.to_string q1) in
  Alcotest.(check string) "print/parse" (Gcq.to_string q1) (Gcq.to_string q1');
  Alcotest.check_raises "unsafe condition variable"
    (Invalid_argument "Gcq.make: condition variable not covered by the guards") (fun () ->
        ignore (Gcq.parse "D(?x), !B(?z)"))

let test_eval_d1 () =
  (* satisfied: B(y) absent *)
  Alcotest.(check bool) "no B" true
    (Gcq.eval q1 (facts [ fact "D" [ "1" ]; fact "S" [ "1"; "2" ]; fact "A" [ "2" ] ]));
  (* blocked: B(y) present without C(y) *)
  Alcotest.(check bool) "B without C" false
    (Gcq.eval q1
       (facts [ fact "D" [ "1" ]; fact "S" [ "1"; "2" ]; fact "A" [ "2" ]; fact "B" [ "2" ] ]));
  (* repaired: B(y) and C(y) both present — ¬(B ∧ ¬C) holds again *)
  Alcotest.(check bool) "B with C" true
    (Gcq.eval q1
       (facts
          [ fact "D" [ "1" ]; fact "S" [ "1"; "2" ]; fact "A" [ "2" ]; fact "B" [ "2" ];
            fact "C" [ "2" ] ]))

let test_eval_d2 () =
  Alcotest.(check bool) "plain edge" true (Gcq.eval q2 (facts [ fact "S" [ "1"; "2" ] ]));
  Alcotest.(check bool) "blocked" false
    (Gcq.eval q2 (facts [ fact "S" [ "1"; "2" ]; fact "A" [ "1" ]; fact "B" [ "2" ] ]));
  Alcotest.(check bool) "only A" true
    (Gcq.eval q2 (facts [ fact "S" [ "1"; "2" ]; fact "A" [ "1" ] ]));
  Alcotest.(check bool) "another witness" true
    (Gcq.eval q2
       (facts [ fact "S" [ "1"; "2" ]; fact "A" [ "1" ]; fact "B" [ "2" ]; fact "S" [ "3"; "4" ] ]))

let test_of_cqneg () =
  let qn = Cqneg.parse "R(?x), S(?x,?y), !T(?y)" in
  let g = Gcq.of_cqneg qn in
  List.iter
    (fun fs ->
       Alcotest.(check bool) "agrees with CQ¬" (Cqneg.eval qn fs) (Gcq.eval g fs))
    [
      facts [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ] ];
      facts [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ];
      facts [ fact "R" [ "1" ] ];
    ]

let lineage_correct q db =
  let phi = Lineage.lineage q db in
  Database.fold_endo_subsets
    (fun s acc ->
       acc && Bform.eval phi s = Query.eval q (Fact.Set.union s (Database.exo db)))
    db true

let test_lineage () =
  let db =
    Database.make
      ~endo:[ fact "D" [ "1" ]; fact "S" [ "1"; "2" ]; fact "A" [ "2" ]; fact "B" [ "2" ];
              fact "C" [ "2" ] ]
      ~exo:[ fact "D" [ "9" ] ]
  in
  Alcotest.(check bool) "q1 lineage" true (lineage_correct (Query.Gcq q1) db);
  let db2 =
    Database.make
      ~endo:[ fact "S" [ "1"; "2" ]; fact "A" [ "1" ]; fact "B" [ "2" ]; fact "S" [ "3"; "1" ] ]
      ~exo:[ fact "B" [ "1" ] ]
  in
  Alcotest.(check bool) "q2 lineage" true (lineage_correct (Query.Gcq q2) db2)

let test_lemma_d2_example_d1 () =
  let db =
    Database.make
      ~endo:[ fact "D" [ "1" ]; fact "S" [ "1"; "2" ]; fact "A" [ "2" ]; fact "B" [ "2" ];
              fact "C" [ "2" ] ]
      ~exo:[ fact "A" [ "9" ] ]
  in
  let q_tilde, poly =
    Negation_red.lemma_d2 ~svc:(Oracle.svc_of (Query.Gcq q1)) ~q:q1 db
  in
  check_zpoly "Example D.1" (Model_counting.fgmc_polynomial_brute q_tilde db) poly

let test_lemma_d2_example_d2 () =
  let db =
    Database.make
      ~endo:[ fact "S" [ "1"; "2" ]; fact "A" [ "1" ]; fact "B" [ "2" ]; fact "S" [ "1"; "3" ] ]
      ~exo:[ fact "B" [ "9" ] ]
  in
  let q_tilde, poly =
    Negation_red.lemma_d2 ~svc:(Oracle.svc_of (Query.Gcq q2)) ~q:q2 db
  in
  check_zpoly "Example D.2" (Model_counting.fgmc_polynomial_brute q_tilde db) poly

let test_lemma_d2_guards () =
  let db = Database.make ~endo:[ fact "S" [ "1"; "2" ] ] ~exo:[] in
  let shared = Gcq.parse "S(?x,?y), !(S(?y,?x))" in
  Alcotest.check_raises "vocabulary overlap"
    (Invalid_argument "Negation_red.lemma_d2: guard and condition vocabularies overlap")
    (fun () ->
       ignore (Negation_red.lemma_d2 ~svc:(Oracle.svc_of (Query.Gcq shared)) ~q:shared db));
  let selfjoin = Gcq.parse "S(?x,?y), S(?y,?z), !A(?x)" in
  Alcotest.check_raises "self-join guards"
    (Invalid_argument "Negation_red.lemma_d2: guards are not self-join-free") (fun () ->
        ignore
          (Negation_red.lemma_d2 ~svc:(Oracle.svc_of (Query.Gcq selfjoin)) ~q:selfjoin db))

let prop_lineage_random_d1 =
  qcheck ~count:40 "Example D.1 lineage on random instances"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r
           ~rels:[ ("D", 1); ("S", 2); ("A", 1); ("B", 1); ("C", 1) ]
           ~consts:[ "1"; "2" ] ~n_endo:(2 + Workload.int r 4) ~n_exo:(Workload.int r 2)
       in
       lineage_correct (Query.Gcq q1) db)

let prop_lemma_d2_random =
  qcheck ~count:15 "Lemma D.2 on random instances (Example D.2)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("S", 2); ("A", 1); ("B", 1) ]
           ~consts:[ "1"; "2" ] ~n_endo:(2 + Workload.int r 3) ~n_exo:(Workload.int r 2)
       in
       let q_tilde, poly =
         Negation_red.lemma_d2 ~svc:(Oracle.svc_of (Query.Gcq q2)) ~q:q2 db
       in
       Poly.Z.equal poly (Model_counting.fgmc_polynomial q_tilde db))

let suite =
  [
    Alcotest.test_case "parsing" `Quick test_parse;
    Alcotest.test_case "Example D.1 evaluation" `Quick test_eval_d1;
    Alcotest.test_case "Example D.2 evaluation" `Quick test_eval_d2;
    Alcotest.test_case "CQ¬ embedding" `Quick test_of_cqneg;
    Alcotest.test_case "lineage" `Quick test_lineage;
    Alcotest.test_case "Lemma D.2 on Example D.1" `Quick test_lemma_d2_example_d1;
    Alcotest.test_case "Lemma D.2 on Example D.2" `Quick test_lemma_d2_example_d2;
    Alcotest.test_case "Lemma D.2 guards" `Quick test_lemma_d2_guards;
    prop_lineage_random_d1;
    prop_lemma_d2_random;
  ]
