open Test_util

(* The lifted FGMC evaluator for hierarchical sjf-CQs: validated against
   the lineage engine and brute force. *)

let test_single_atom () =
  let q = Cq.parse "R(?x)" in
  let db = Database.make ~endo:[ fact "R" [ "1" ]; fact "R" [ "2" ]; fact "S" [ "3" ] ] ~exo:[] in
  (* subsets with ≥1 R fact, S(3) free: (1+z)^2 - 1 times (1+z) *)
  check_zpoly "single atom"
    (Model_counting.fgmc_polynomial_brute (Query.Cq q) db)
    (Safe_plan.fgmc_polynomial q db);
  (* an exogenous match makes the query certain *)
  let db2 = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "R" [ "9" ] ] in
  check_zpoly "exo certain"
    (Poly.Z.of_coeffs [ Bigint.one; Bigint.one ])
    (Safe_plan.fgmc_polynomial q db2)

let test_repeated_variable () =
  let q = Cq.parse "R(?x,?x)" in
  let db =
    Database.make ~endo:[ fact "R" [ "1"; "1" ]; fact "R" [ "1"; "2" ] ] ~exo:[]
  in
  check_zpoly "diagonal only"
    (Model_counting.fgmc_polynomial_brute (Query.Cq q) db)
    (Safe_plan.fgmc_polynomial q db)

let test_join_with_separator () =
  let q = Cq.parse "R(?x), S(?x,?y)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "S" [ "1"; "3" ];
              fact "R" [ "4" ]; fact "S" [ "4"; "5" ]; fact "S" [ "9"; "9" ] ]
      ~exo:[]
  in
  check_zpoly "separator projection"
    (Model_counting.fgmc_polynomial_brute (Query.Cq q) db)
    (Safe_plan.fgmc_polynomial q db)

let test_independent_join () =
  let q = Cq.parse "R(?x), T(?y)" in
  let db =
    Database.make ~endo:[ fact "R" [ "1" ]; fact "T" [ "2" ]; fact "T" [ "3" ] ] ~exo:[]
  in
  check_zpoly "independent join"
    (Model_counting.fgmc_polynomial_brute (Query.Cq q) db)
    (Safe_plan.fgmc_polynomial q db)

let test_three_level () =
  (* R(x), S(x,y), U(x,y,z): hierarchical with nested separators *)
  let q = Cq.parse "R(?x), S(?x,?y), U(?x,?y,?z)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "U" [ "1"; "2"; "3" ];
              fact "U" [ "1"; "2"; "4" ]; fact "S" [ "1"; "5" ]; fact "U" [ "1"; "5"; "6" ] ]
      ~exo:[ fact "R" [ "7" ] ]
  in
  check_zpoly "nested separators"
    (Model_counting.fgmc_polynomial_brute (Query.Cq q) db)
    (Safe_plan.fgmc_polynomial q db)

let test_constants_in_query () =
  let q = Cq.parse "R(a,?x), S(?x)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "a"; "1" ]; fact "R" [ "b"; "2" ]; fact "S" [ "1" ]; fact "S" [ "2" ] ]
      ~exo:[]
  in
  check_zpoly "query constants"
    (Model_counting.fgmc_polynomial_brute (Query.Cq q) db)
    (Safe_plan.fgmc_polynomial q db)

let test_guards () =
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  Alcotest.check_raises "self-join rejected"
    (Invalid_argument "Safe_plan.fgmc_polynomial: query has self-joins") (fun () ->
        ignore (Safe_plan.fgmc_polynomial (Cq.parse "R(?x,?y), R(?y,?z)") db));
  Alcotest.check_raises "non-hierarchical rejected"
    (Invalid_argument "Safe_plan.fgmc_polynomial: query is not hierarchical") (fun () ->
        ignore (Safe_plan.fgmc_polynomial (Cq.parse "R(?x), S(?x,?y), T(?y)") db));
  Alcotest.(check bool) "supported" true (Safe_plan.supported (Cq.parse "R(?x), S(?x,?y)"));
  Alcotest.(check bool) "not supported" false
    (Safe_plan.supported (Cq.parse "R(?x), S(?x,?y), T(?y)"))

let prop_matches_brute =
  qcheck ~count:60 "safe plan = brute force on random instances"
    QCheck2.Gen.(pair (int_range 0 1000000) (oneofl [ "R(?x), S(?x,?y)"; "R(?x), S(?x,?y), U(?x,?y,?z)"; "R(?x), T(?y)"; "R(a,?x)" ]))
    (fun (seed, qs) ->
       let q = Cq.parse qs in
       let r = Workload.rng seed in
       let db =
         Workload.random_database r
           ~rels:[ ("R", 1); ("S", 2); ("T", 1); ("U", 3) ]
           ~consts:[ "a"; "1"; "2" ]
           ~n_endo:(1 + Workload.int r 5)
           ~n_exo:(Workload.int r 3)
       in
       (* adapt R's arity for the constant-pattern query *)
       let db =
         if qs = "R(a,?x)" then
           let r2 = Workload.rng seed in
           Workload.random_database r2 ~rels:[ ("R", 2); ("S", 2) ]
             ~consts:[ "a"; "1"; "2" ]
             ~n_endo:(1 + Workload.int r2 5)
             ~n_exo:(Workload.int r2 3)
         else db
       in
       Poly.Z.equal
         (Safe_plan.fgmc_polynomial q db)
         (Model_counting.fgmc_polynomial_brute (Query.Cq q) db))

let prop_polynomial_guarantee =
  (* the safe plan handles instances far beyond brute force *)
  qcheck ~count:5 "scales to large instances" QCheck2.Gen.(int_range 20 60) (fun spokes ->
      let db = Gen.star ~spokes in
      let q = Cq.parse "R(?x), S(?x,?y)" in
      let p = Safe_plan.fgmc_polynomial q db in
      (* on a single star: supports = subsets containing R(hub) and ≥1 spoke *)
      Bigint.equal (Poly.Z.total p)
        (Bigint.sub (Bigint.pow Bigint.two spokes) Bigint.one))

let test_svc_hierarchical () =
  let q = Cq.parse "R(?x), S(?x,?y)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "S" [ "1"; "3" ]; fact "R" [ "4" ] ]
      ~exo:[ fact "S" [ "4"; "5" ] ]
  in
  List.iter
    (fun f ->
       check_rational (Fact.to_string f)
         (Svc.svc_brute (Query.Cq q) db f)
         (Svc.svc_hierarchical q db f))
    (Database.endo_list db);
  (* scales to instances far beyond brute force *)
  let big = Gen.star ~spokes:60 in
  let hub = fact "R" [ "hub" ] in
  let v = Svc.svc_hierarchical q big hub in
  Alcotest.(check bool) "hub dominates" true (Rational.compare v Rational.half > 0)

let prop_svc_hierarchical_random =
  qcheck ~count:30 "PTIME SVC = brute on random hierarchical instances"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q = Cq.parse "R(?x), S(?x,?y)" in
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2) ] ~consts:[ "1"; "2"; "3" ]
           ~n_endo:(1 + Workload.int r 5) ~n_exo:(Workload.int r 3)
       in
       List.for_all
         (fun f ->
            Rational.equal (Svc.svc_hierarchical q db f) (Svc.svc_brute (Query.Cq q) db f))
         (Database.endo_list db))

let suite =
  [
    Alcotest.test_case "single atom" `Quick test_single_atom;
    Alcotest.test_case "PTIME SVC (dichotomy FP side)" `Quick test_svc_hierarchical;
    prop_svc_hierarchical_random;
    Alcotest.test_case "repeated variable" `Quick test_repeated_variable;
    Alcotest.test_case "separator projection" `Quick test_join_with_separator;
    Alcotest.test_case "independent join" `Quick test_independent_join;
    Alcotest.test_case "nested separators" `Quick test_three_level;
    Alcotest.test_case "query constants" `Quick test_constants_in_query;
    Alcotest.test_case "guards" `Quick test_guards;
    prop_matches_brute;
    prop_polynomial_guarantee;
  ]
