open Test_util

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let test_fgmc_known_values () =
  (* a fully worked instance: R(1), S(1,2), T(2) endogenous — supports are
     exactly the supersets of all three facts *)
  let db = Database.make ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ] ~exo:[] in
  check_zpoly "single support"
    (Poly.Z.monomial Bigint.one 3)
    (Model_counting.fgmc_polynomial qrst db);
  check_bigint "gmc" Bigint.one (Model_counting.gmc qrst db);
  check_bigint "fgmc 3" Bigint.one (Model_counting.fgmc qrst db 3);
  check_bigint "fgmc 2" Bigint.zero (Model_counting.fgmc qrst db 2)

let test_fgmc_with_exo () =
  let db =
    Database.make ~endo:[ fact "S" [ "1"; "2" ] ] ~exo:[ fact "R" [ "1" ]; fact "T" [ "2" ] ]
  in
  check_zpoly "exo-completed"
    (Poly.Z.monomial Bigint.one 1)
    (Model_counting.fgmc_polynomial qrst db);
  (* satisfied by exogenous part alone *)
  let db2 =
    Database.make ~endo:[ fact "S" [ "9"; "9" ] ]
      ~exo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ]
  in
  check_zpoly "always satisfied"
    (Poly.Z.of_coeffs [ Bigint.one; Bigint.one ])
    (Model_counting.fgmc_polynomial qrst db2)

let test_mc_guards () =
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "T" [ "2" ] ] in
  Alcotest.check_raises "mc refuses exo"
    (Invalid_argument "Model_counting.mc: database has exogenous facts (use the generalized variant)")
    (fun () -> ignore (Model_counting.mc qrst db));
  Alcotest.check_raises "fmc refuses exo"
    (Invalid_argument "Model_counting.fmc: database has exogenous facts (use the generalized variant)")
    (fun () -> ignore (Model_counting.fmc qrst db 1))

let test_prob_db () =
  let f1 = fact "R" [ "1" ] and f2 = fact "S" [ "1"; "2" ] in
  let pdb = Prob_db.make [ (f1, Rational.of_ints 1 2); (f2, Rational.one) ] in
  Alcotest.(check bool) "half instance (with 1s)" true (Prob_db.is_half_one_instance pdb);
  Alcotest.(check bool) "not pure half" false (Prob_db.is_half_instance pdb);
  Alcotest.(check bool) "sppqe instance" true (Prob_db.is_sppqe_instance pdb);
  Alcotest.(check bool) "not spqe instance" false (Prob_db.is_spqe_instance pdb);
  let db = Prob_db.to_database pdb in
  Alcotest.(check bool) "prob-1 fact exogenous" true (Database.mem_exo f2 db);
  Alcotest.(check bool) "prob-1/2 fact endogenous" true (Database.mem_endo f1 db);
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Prob_db: probabilities must lie in (0, 1]") (fun () ->
        ignore (Prob_db.make [ (f1, Rational.zero) ]));
  Alcotest.check_raises "repeated fact" (Invalid_argument "Prob_db.make: repeated fact")
    (fun () -> ignore (Prob_db.make [ (f1, Rational.half); (f1, Rational.half) ]))

let test_pqe_known_value () =
  (* q = R(x): two R facts with probs 1/2, 1/3 → Pr = 1 - 1/2·2/3 = 2/3 *)
  let q = Query_parse.parse "R(?x)" in
  let pdb =
    Prob_db.make
      [ (fact "R" [ "1" ], Rational.half); (fact "R" [ "2" ], Rational.of_ints 1 3) ]
  in
  check_rational "pqe" (Rational.of_ints 2 3) (Pqe.pqe q pdb);
  check_rational "brute agrees" (Pqe.pqe_brute q pdb) (Pqe.pqe q pdb)

let test_sppqe_edge_cases () =
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  let q = Query_parse.parse "R(?x)" in
  check_rational "p=1" Rational.one (Pqe.sppqe q db Rational.one);
  check_rational "p=1/2" Rational.half (Pqe.sppqe q db Rational.half);
  Alcotest.check_raises "p=0 rejected"
    (Invalid_argument "Pqe.sppqe: probability must lie in (0, 1]") (fun () ->
        ignore (Pqe.sppqe_of_polynomial Poly.Z.one ~n:0 Rational.zero));
  Alcotest.check_raises "spqe guards exo"
    (Invalid_argument "Pqe.spqe: database has exogenous facts (use sppqe)") (fun () ->
        ignore
          (Pqe.spqe q (Database.make ~endo:[] ~exo:[ fact "R" [ "9" ] ]) Rational.half))

let random_db seed =
  let r = Workload.rng seed in
  Workload.random_database r
    ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
    ~consts:[ "1"; "2"; "3" ]
    ~n_endo:(2 + Workload.int r 5)
    ~n_exo:(Workload.int r 3)

let prop_fgmc_lineage_vs_brute =
  qcheck ~count:60 "FGMC lineage = brute" QCheck2.Gen.(int_range 0 1000000) (fun seed ->
      fgmc_agree qrst (random_db seed))

let prop_gmc_total =
  qcheck ~count:40 "GMC is the polynomial total" QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let db = random_db seed in
       Bigint.equal (Model_counting.gmc qrst db)
         (Poly.Z.total (Model_counting.fgmc_polynomial qrst db)))

let prop_pqe_lineage_vs_brute =
  qcheck ~count:40 "PQE lineage = brute (mixed probabilities)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let db = random_db seed in
       let r = Workload.rng (seed + 17) in
       let assoc =
         List.map
           (fun f -> (f, Rational.of_ints (1 + Workload.int r 3) 4))
           (Database.endo_list db)
         @ List.map (fun f -> (f, Rational.one)) (Fact.Set.elements (Database.exo db))
       in
       let pdb = Prob_db.make assoc in
       Rational.equal (Pqe.pqe qrst pdb) (Pqe.pqe_brute qrst pdb))

let prop_sppqe_identity =
  qcheck ~count:40 "SPPQE via polynomial = brute uniform PQE"
    QCheck2.Gen.(pair (int_range 0 1000000) (int_range 1 4))
    (fun (seed, num) ->
       let db = random_db seed in
       let p = Rational.of_ints num 5 in
       let pdb = Prob_db.uniform db p in
       Rational.equal (Pqe.sppqe qrst db p) (Pqe.pqe_brute qrst pdb))

let prop_binomial_when_exo_satisfies =
  qcheck ~count:20 "FGMC is binomial when Dₓ ⊨ q" QCheck2.Gen.(int_range 1 6) (fun n ->
      let support = [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ] in
      let extra = List.init n (fun i -> fact "R" [ Printf.sprintf "e%d" i ]) in
      let db = Database.make ~endo:extra ~exo:support in
      let p = Model_counting.fgmc_polynomial qrst db in
      List.for_all
        (fun j -> Bigint.equal (Poly.Z.coeff p j) (Bigint.binomial n j))
        (List.init (n + 1) Fun.id))

let suite =
  [
    Alcotest.test_case "FGMC known values" `Quick test_fgmc_known_values;
    Alcotest.test_case "FGMC with exogenous facts" `Quick test_fgmc_with_exo;
    Alcotest.test_case "MC/FMC guards" `Quick test_mc_guards;
    Alcotest.test_case "probabilistic databases" `Quick test_prob_db;
    Alcotest.test_case "PQE known value" `Quick test_pqe_known_value;
    Alcotest.test_case "SPPQE edge cases" `Quick test_sppqe_edge_cases;
    prop_fgmc_lineage_vs_brute;
    prop_gmc_total;
    prop_pqe_lineage_vs_brute;
    prop_sppqe_identity;
    prop_binomial_when_exo_satisfies;
  ]
